#!/usr/bin/env python
"""Acoustic waves: the fast time scale that dictates explicit methods.

Subsonic flow carries two time scales — slow hydrodynamics and
fast-moving acoustic waves — and resolving the waves requires
``c_s dt ~ dx`` (eq. 4), which is exactly the step size explicit
methods want anyway.  This example propagates a standing acoustic wave
with both methods and measures its oscillation frequency against the
analytic ``omega = c_s k``, then shows the damping rate scaling with
viscosity.

Run:  python examples/acoustic_resonance.py [--nx 64] [--mode 1]
"""

import argparse

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FDMethod,
    FluidParams,
    LBMethod,
    acoustic_frequency,
    standing_wave,
)


def measure_frequency(method_cls, nx, mode, nu, periods=4):
    """Track the wave's modal amplitude and fit its frequency."""
    ny = 8
    params = FluidParams.lattice(2, nu=nu)
    x = np.arange(nx, dtype=float) + 0.5
    rho0, _ = standing_wave(x, 0.0, float(nx), mode, 1e-4, 1.0, params.cs)
    fields = {
        "rho": np.repeat(rho0[:, None], ny, axis=1),
        "u": np.zeros((nx, ny)),
        "v": np.zeros((nx, ny)),
    }
    sim = Simulation(
        method_cls(params, 2),
        Decomposition((nx, ny), (2, 1), periodic=(True, True)),
        fields,
    )
    omega_exact = acoustic_frequency(float(nx), mode, params.cs)
    period = 2.0 * np.pi / omega_exact
    steps_total = int(periods * period)
    basis = np.cos(2.0 * np.pi * mode * x / nx)

    amps = []
    for _ in range(steps_total):
        sim.step(1)
        drho = sim.global_field("rho")[:, ny // 2] - 1.0
        amps.append(2.0 * np.dot(drho, basis) / nx)
    amps = np.array(amps)

    # frequency from zero crossings of the modal amplitude
    signs = np.sign(amps)
    crossings = np.nonzero(np.diff(signs) != 0)[0]
    if len(crossings) < 2:
        return float("nan"), amps
    half_period = np.mean(np.diff(crossings))
    omega = np.pi / half_period
    return omega, amps


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=64)
    ap.add_argument("--mode", type=int, default=1)
    ap.add_argument("--nu", type=float, default=1e-3)
    args = ap.parse_args()

    cs = FluidParams.lattice(2, nu=args.nu).cs
    omega_exact = acoustic_frequency(float(args.nx), args.mode, cs)
    print(f"standing wave, mode {args.mode} on {args.nx} nodes: "
          f"analytic omega = {omega_exact:.5f} "
          f"(period {2 * np.pi / omega_exact:.1f} steps)\n")

    for method_cls, name in ((FDMethod, "finite differences"),
                             (LBMethod, "lattice Boltzmann")):
        omega, amps = measure_frequency(
            method_cls, args.nx, args.mode, args.nu
        )
        err = abs(omega - omega_exact) / omega_exact
        decay = abs(amps[-1]) / abs(amps[0])
        print(f"{name}:")
        print(f"  measured omega  = {omega:.5f}  ({err * 100:.2f}% off)")
        print(f"  amplitude ratio over the run = {decay:.3f}")
        assert err < 0.05, "wave speed must match c_s within 5%"

    print("\nviscous damping check (LB, mode 1):")
    for nu in (5e-3, 2e-2):
        _, amps = measure_frequency(LBMethod, args.nx, 1, nu, periods=2)
        print(f"  nu = {nu:<6g} amplitude ratio = "
              f"{abs(amps[-1]) / abs(amps[0]):.3f}")


if __name__ == "__main__":
    main()
