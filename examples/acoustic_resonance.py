#!/usr/bin/env python
"""Acoustic waves: the fast time scale that dictates explicit methods.

Subsonic flow carries two time scales — slow hydrodynamics and
fast-moving acoustic waves — and resolving the waves requires
``c_s dt ~ dx`` (eq. 4), which is exactly the step size explicit
methods want anyway.  This example runs the registry's
``acoustic_wave`` scenario (a standing wave on a periodic box,
initialized by the spec's ``standing_wave`` program) with both
methods through the ``repro.run`` facade: the score measures the
kinetic-energy oscillation frequency against the analytic
``omega = c_s k`` dispersion, then a second pass shows the damping
rate scaling with viscosity.

Run:  python examples/acoustic_resonance.py [--nx 64] [--mode 1]
"""

import argparse

from repro.scenarios import diag_series, get, run_case


def run_scored(scenario, **overrides):
    case = scenario.case(**overrides)
    result = run_case(case, backend="serial")
    return result, scenario.score(result.fields, result.diagnostics,
                                  **overrides)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=64)
    ap.add_argument("--mode", type=int, default=1)
    ap.add_argument("--nu", type=float, default=1e-3)
    args = ap.parse_args()

    scenario = get("acoustic_wave")
    for method, name in (("fd", "finite differences"),
                         ("lb", "lattice Boltzmann")):
        _, score = run_scored(scenario, method=method, nx=args.nx,
                              mode=args.mode, nu=args.nu)
        d = score.details
        print(f"{name}:")
        print(f"  KE oscillation  {d['frequency']:.6f} cycles/step "
              f"(analytic {d['expected']:.6f})")
        print(f"  relative error  "
              f"{score.residuals['freq_rel_err'] * 100:.2f}%  "
              f"({'pass' if score.passed else 'FAIL'})")
        for failure in score.failures:
            print(f"  failed: {failure}")

    print("\nviscous damping check (LB, mode 1):")
    for nu in (5e-3, 2e-2):
        result, _ = run_scored(scenario, method="lb", nx=args.nx,
                               mode=1, nu=nu)
        ke = diag_series(result.diagnostics, "kinetic_energy")
        print(f"  nu = {nu:<6g} KE ratio over the run = "
              f"{ke[-1] / ke.max():.3f}")


if __name__ == "__main__":
    main()
