#!/usr/bin/env python
"""Flow past a cylinder: unsteady subsonic flow shedding vortices.

The flue pipe works because jets and obstacles in subsonic flow shed
periodic vorticity coupled to acoustic waves; the cylinder wake is the
canonical version of the same physics.  At Reynolds numbers beyond ~50
the wake destabilizes into the von Karman vortex street.

The problem lives in the scenario registry as ``cylinder_wake`` — this
script resolves it with your parameters, marches it through the
``repro.run`` facade, and scores the result: the scenario requires a
developed mean flow, transverse wake oscillations, and a vortex-street
wavelength in the physical 3-15 diameter range.  The non-dimensional
shedding frequency follows from the measured wavelength (vortices ride
the mean flow, so St = f D / U ~ D / wavelength), which sits near the
literature's ~0.2 over a wide range of Re.

Run:  python examples/cylinder_wake.py [--nx 160] [--steps 6000]
"""

import argparse

import numpy as np

from repro.fluids import vorticity_2d
from repro.scenarios import get, run_case


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=160)
    ap.add_argument("--steps", type=int, default=6000)
    ap.add_argument("--u", type=float, default=0.08,
                    help="driving speed (lattice units)")
    ap.add_argument("--re", type=int, default=120,
                    help="Reynolds number U*D/nu")
    args = ap.parse_args()

    scenario = get("cylinder_wake")
    overrides = {"nx": args.nx, "Re": args.re, "speed": args.u,
                 "steps": args.steps}
    case = scenario.case(**overrides)
    nx, ny = case.spec.grid_shape
    diameter = 2 * 0.08 * ny
    nu = case.spec.params["nu"]
    print(f"grid {nx}x{ny}, D = {diameter:.0f} nodes, Re = {args.re}, "
          f"nu = {nu:.4f} ({case.settings['steps']} steps)")

    result = run_case(case, backend="threaded")
    score = scenario.score(result.fields, result.diagnostics,
                           **overrides)

    d = score.details
    wavelength_d = d["street_wavelength_D"]
    strouhal = 1.0 / wavelength_d  # f = U/lambda  =>  St = D/lambda
    print(f"mean streamwise speed   {d['u_mean']:.4f}")
    print(f"wake |v| / u_mean       {d['wake_ratio']:.2f}")
    print(f"street wavelength       {wavelength_d:.1f} D")
    print(f"Strouhal estimate St    {strouhal:.3f}  (literature ~0.2)")
    print(f"scenario score          "
          f"{'pass' if score.passed else 'FAIL'} "
          f"{ {k: f'{v:.3g}' for k, v in score.residuals.items()} }")
    for failure in score.failures:
        print(f"  failed: {failure}")

    u, v = result.fields["u"], result.fields["v"]
    solid, _, _ = case.spec.build_geometry()
    w = vorticity_2d(u, v)
    w[solid] = 0.0
    print(f"wake vorticity extrema  {w.min():+.4f} / {w.max():+.4f}")
    np.savez_compressed("cylinder_wake.npz", u=u, v=v, vorticity=w,
                        solid=solid)
    print("fields written to cylinder_wake.npz")


if __name__ == "__main__":
    main()
