#!/usr/bin/env python
"""Flow past a cylinder: unsteady subsonic flow shedding vortices.

The flue pipe works because jets and obstacles in subsonic flow shed
periodic vorticity coupled to acoustic waves; the cylinder wake is the
canonical version of the same physics.  At Reynolds numbers beyond ~50
the wake destabilizes into the von Karman vortex street, and a probe in
the wake picks up the shedding tone — the non-dimensional shedding
frequency (Strouhal number, St = f D / U) sits near 0.2 over a wide
range of Re, which this script measures.

Run:  python examples/cylinder_wake.py [--nx 240] [--steps 6000]
"""

import argparse

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FluidParams,
    GlobalBox,
    LBMethod,
    Probe,
    cylinder_channel,
    dominant_frequency,
    vorticity_2d,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--nx", type=int, default=240)
    ap.add_argument("--steps", type=int, default=6000)
    ap.add_argument("--u", type=float, default=0.08,
                    help="driving speed (lattice units)")
    ap.add_argument("--re", type=float, default=120.0,
                    help="Reynolds number U*D/nu")
    args = ap.parse_args()

    nx, ny = args.nx, args.nx // 2
    solid = cylinder_channel((nx, ny), radius_frac=0.08)
    diameter = 2 * 0.08 * ny
    nu = args.u * diameter / args.re
    params = FluidParams.lattice(2, nu=nu, filter_eps=0.01)
    params.check_stability(2)

    # drive with a body force that roughly sustains the target speed:
    # in steady channel flow u ~ g H^2 / (8 nu); invert for g
    g = 8.0 * nu * args.u / (ny - 2.0) ** 2 * 2.0
    params = params.with_(gravity=(g, 0.0))

    print(f"grid {nx}x{ny}, D = {diameter:.0f} nodes, Re = {args.re:.0f}, "
          f"nu = {nu:.4f}, tau = {params.lb_tau:.3f}")

    fields = {
        "rho": np.ones((nx, ny)),
        # seed with a slight asymmetry so the instability onset is quick
        "u": np.full((nx, ny), args.u),
        "v": 1e-3 * args.u * np.sin(
            np.linspace(0, 2 * np.pi, nx)
        )[:, None] * np.ones((1, ny)),
    }
    fields["u"][solid] = 0.0
    fields["v"][solid] = 0.0

    sim = Simulation(
        LBMethod(params, 2),
        Decomposition((nx, ny), (4, 1), periodic=(True, False),
                      solid=solid),
        fields,
        solid,
    )

    # probe in the near wake, slightly off axis (v oscillates there)
    px = int(0.25 * nx + diameter * 1.5)
    py = int(0.5 * ny + diameter * 0.5)
    probe = Probe(GlobalBox((px, py), (px + 2, py + 2)), name="v")

    settle = args.steps // 3
    sim.step(settle)
    probe.run(sim, steps=args.steps - settle, every=5)

    u_mean = float(sim.global_field("u")[~solid].mean())
    f_shed = dominant_frequency(probe.signal, dt=probe.sample_period)
    strouhal = f_shed * diameter / u_mean
    w = vorticity_2d(sim.global_field("u"), sim.global_field("v"))
    w[solid] = 0.0

    print(f"mean streamwise speed   {u_mean:.4f}")
    print(f"shedding frequency      {f_shed:.6f} cycles/step")
    print(f"Strouhal number St      {strouhal:.3f}  (literature ~0.2)")
    print(f"wake vorticity extrema  {w.min():+.4f} / {w.max():+.4f}")
    np.savez_compressed("cylinder_wake.npz",
                        u=sim.global_field("u"),
                        v=sim.global_field("v"),
                        vorticity=w, solid=solid,
                        probe=probe.signal)
    print("fields written to cylinder_wake.npz")


if __name__ == "__main__":
    main()
