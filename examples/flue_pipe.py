#!/usr/bin/env python
"""Flue-pipe simulation: the paper's headline application (figs. 1-2).

A jet of air enters through an opening in the left wall, impinges the
sharp edge (labium) above the resonant pipe, and the jet oscillations
are reinforced by acoustic feedback — the sound-production mechanism of
the organ, the recorder and the flute.

The two geometries live in the scenario registry: ``flue_pipe`` is the
fig. 1 basic pipe, scored by diagnostics spectroscopy (the run must
produce a spectral line within a factor of the pipe's quarter-wave
estimate, well above the noise floor); ``flue_pipe_channel`` is the
fig. 2 channel variant whose solid lower-right quadrant idles whole
subregions of the decomposition.  This script runs either through the
``repro.run`` facade, prints the score, and writes:

* ``flue_pipe_<variant>.npz``  — final rho/u/v fields + vorticity,
* an ASCII rendering of the equi-vorticity pattern (the fig. 1 plot),
* ``flue_pipe_<variant>.ppm`` — the vorticity snapshot.

Run:  python examples/flue_pipe.py [--variant basic|channel]
      [--nx 200] [--steps 6000] [--jet 0.12]
"""

import argparse

import numpy as np

from repro.fluids import vorticity_2d
from repro.scenarios import get, run_case
from repro.viz import ascii_contours, field_to_ppm


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--variant", choices=("basic", "channel"),
                    default="basic")
    ap.add_argument("--nx", type=int, default=200,
                    help="grid width (paper: 800)")
    ap.add_argument("--steps", type=int, default=None,
                    help="time steps (default: the scenario's; the "
                        "basic tone needs several thousand)")
    ap.add_argument("--jet", type=float, default=0.12)
    ap.add_argument("--nu", type=float, default=0.02)
    args = ap.parse_args()

    scenario = get("flue_pipe" if args.variant == "basic"
                   else "flue_pipe_channel")
    overrides = {"nx": args.nx, "jet_speed": args.jet, "nu": args.nu}
    if args.steps is not None:
        overrides["steps"] = args.steps
    case = scenario.case(**overrides)
    spec = case.spec
    decomp = spec.build_decomposition()
    print(f"fig. {'1' if args.variant == 'basic' else '2'} geometry "
          f"{spec.grid_shape}, decomposition "
          f"{spec.blocks[0]}x{spec.blocks[1]} = {decomp.n_blocks} "
          f"subregions, {decomp.n_active} active "
          f"({case.settings['steps']} steps)")

    result = run_case(case, backend="threaded")
    score = scenario.score(result.fields, result.diagnostics,
                           **overrides)
    print(f"scenario score: {'pass' if score.passed else 'FAIL'} "
          f"{ {k: f'{v:.3g}' for k, v in score.residuals.items()} }")
    for failure in score.failures:
        print(f"  failed: {failure}")
    d = score.details
    if "frequency" in d:
        print(f"  tone at {d['frequency']:.2e} cycles/step "
              f"(quarter-wave estimate {d['quarter_wave']:.2e}, "
              f"SNR {d['snr']:.0f})")

    u, v = result.fields["u"], result.fields["v"]
    solid, _, _ = spec.build_geometry()
    w = vorticity_2d(u, v)
    w[solid] = 0.0

    out = f"flue_pipe_{args.variant}.npz"
    np.savez_compressed(out, rho=result.fields["rho"], u=u, v=v,
                        vorticity=w, solid=solid)
    image = field_to_ppm(w, f"flue_pipe_{args.variant}.ppm",
                         solid=solid)
    print(f"\nfields written to {out}; vorticity image to {image} "
          "(the fig. 1 snapshot)")
    print(f"peak |vorticity| = {np.abs(w).max():.4f}\n")
    print("equi-vorticity pattern (+/- contours, # = walls):\n")
    print(ascii_contours(w, solid))


if __name__ == "__main__":
    main()
