#!/usr/bin/env python
"""Flue-pipe simulation: the paper's headline application (figs. 1-2).

A jet of air enters through an opening in the left wall, impinges the
sharp edge (labium) above the resonant pipe, and the jet oscillations
are reinforced by acoustic feedback — the sound-production mechanism of
the organ, the recorder and the flute.

The script runs the lattice Boltzmann method on the fig. 1 ("basic") or
fig. 2 ("channel") geometry, decomposed exactly as the paper decomposes
it, records the acoustic signal at the pipe mouth, and writes:

* ``flue_pipe_<variant>.npz``  — final rho/u/v fields + vorticity,
* an ASCII rendering of the equi-vorticity pattern (the fig. 1 plot),
* the mouth-pressure time series summary (the musical tone's onset).

Run:  python examples/flue_pipe.py [--variant basic|channel]
      [--nx 200] [--steps 400] [--jet 0.08]
"""

import argparse

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import FluidParams, LBMethod, flue_pipe, vorticity_2d
from repro.viz import ascii_contours, field_to_ppm


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--variant", choices=("basic", "channel"),
                    default="basic")
    ap.add_argument("--nx", type=int, default=200,
                    help="grid width (paper: 800)")
    ap.add_argument("--steps", type=int, default=400)
    ap.add_argument("--jet", type=float, default=0.08)
    ap.add_argument("--nu", type=float, default=0.02)
    args = ap.parse_args()

    shape = (args.nx, args.nx * 5 // 8)  # the paper's 800x500 aspect
    blocks = (5, 4) if args.variant == "basic" else (6, 4)
    setup = flue_pipe(shape, jet_speed=args.jet, variant=args.variant,
                      ramp_steps=60)
    decomp = Decomposition(shape, blocks, solid=setup.solid)
    print(f"fig. {'1' if args.variant == 'basic' else '2'} geometry "
          f"{shape}, decomposition {blocks[0]}x{blocks[1]} = "
          f"{decomp.n_blocks} subregions, {decomp.n_active} active "
          f"({decomp.n_active_nodes} of {shape[0] * shape[1]} nodes "
          f"simulated)")

    params = FluidParams.lattice(2, nu=args.nu, filter_eps=0.02)
    method = LBMethod(params, 2, inlets=[setup.inlet],
                      outlets=[setup.outlet])
    fields = {"rho": np.ones(shape), "u": np.zeros(shape),
              "v": np.zeros(shape)}
    sim = Simulation(method, decomp, fields, setup.solid)

    pb = setup.mouth_probe
    probe = []
    chunk = 10
    for n in range(args.steps // chunk):
        sim.step(chunk)
        rho = sim.global_field("rho")
        probe.append(
            float(rho[pb.lo[0]:pb.hi[0], pb.lo[1]:pb.hi[1]].mean())
        )
        if (n + 1) % 10 == 0:
            u = sim.global_field("u")
            print(f"  step {sim.step_count:5d}  max|u| = {np.abs(u).max():.4f}"
                  f"  mouth rho = {probe[-1]:.6f}")

    u = sim.global_field("u")
    v = sim.global_field("v")
    w = vorticity_2d(u, v)
    w[setup.solid] = 0.0

    out = f"flue_pipe_{args.variant}.npz"
    np.savez_compressed(
        out,
        rho=sim.global_field("rho"), u=u, v=v, vorticity=w,
        solid=setup.solid, mouth_probe=np.array(probe),
    )
    image = field_to_ppm(
        w, f"flue_pipe_{args.variant}.ppm", solid=setup.solid
    )
    print(f"\nfields written to {out}; vorticity image to {image} "
          "(the fig. 1 snapshot)")
    print(f"peak |vorticity| = {np.abs(w).max():.4f}; "
          f"mouth-pressure swing = {max(probe) - min(probe):.2e}\n")
    print("equi-vorticity pattern (+/- contours, # = walls):\n")
    print(ascii_contours(w, setup.solid))


if __name__ == "__main__":
    main()
