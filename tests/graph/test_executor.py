"""Graph execution is bit-for-bit the serial run, through the facade."""

import numpy as np
import pytest

import repro
from repro.distrib import ProblemSpec, RunSettings

#: Upstream half LB, downstream half FD — the seam sits on every block
#: boundary used below.
HYBRID = {
    "default": "lb",
    "regions": [{"box": [[16, 0], [32, 24]], "method": "fd"}],
}


def _spec(method, blocks):
    return ProblemSpec(
        method=method,
        grid_shape=(32, 24),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )


def _assert_equal_runs(serial, graphed):
    for name in serial.fields:
        assert np.array_equal(serial.fields[name],
                              graphed.fields[name]), name
    assert len(serial.diagnostics) == len(graphed.diagnostics)
    for a, b in zip(serial.diagnostics, graphed.diagnostics):
        assert (a.step, a.total_mass, a.kinetic_energy, a.max_speed,
                a.n_nonfinite) == (b.step, b.total_mass, b.kinetic_energy,
                                   b.max_speed, b.n_nonfinite)


@pytest.mark.parametrize("method", ["fd", "lb", "hybrid"])
@pytest.mark.parametrize("blocks", [(1, 1), (2, 1), (2, 2)])
def test_graph_matches_serial_bitwise(method, blocks):
    if method == "hybrid" and blocks[0] < 2:
        pytest.skip("a hybrid seam needs a block boundary to sit on")
    spec = _spec(HYBRID if method == "hybrid" else method, blocks)
    rs = RunSettings(steps=6, diag_every=3)
    serial = repro.run(spec, "serial", rs)
    graphed = repro.run(
        spec, "threaded", RunSettings(steps=6, diag_every=3,
                                      execution="graph"),
    )
    assert graphed.backend == "threaded"
    _assert_equal_runs(serial, graphed)


def test_graph_matches_phased_threaded():
    """Both threaded execution modes land on identical bits."""
    spec = _spec("fd", (2, 2))
    phased = repro.run(spec, "threaded", RunSettings(steps=5))
    graphed = repro.run(spec, "threaded",
                        RunSettings(steps=5, execution="graph"))
    for name in phased.fields:
        assert np.array_equal(phased.fields[name],
                              graphed.fields[name]), name


def test_graph_checkpoints_written(tmp_path):
    """save_every produces checkpoint nodes that actually dump."""
    spec = _spec("fd", (2, 1))
    r = repro.run(spec, "threaded",
                  RunSettings(steps=4, save_every=2, execution="graph"),
                  workdir=tmp_path)
    dumps = list((tmp_path / "dumps").rglob("*"))
    assert any(p.is_file() for p in dumps), "no checkpoint files written"
    assert r.steps == 4


def test_executor_direct_api():
    """The raw executor drives a Simulation exactly n steps."""
    from repro.core import Decomposition, Simulation
    from repro.fluids import FDMethod, FluidParams
    from repro.graph import GraphExecutor, plan_graph

    params = FluidParams.lattice(2, nu=0.05)
    shape = (32, 24)
    rng = np.random.default_rng(7)
    fields = {
        "rho": 1.0 + 1e-3 * rng.standard_normal(shape),
        "u": np.zeros(shape),
        "v": np.zeros(shape),
    }

    def build():
        return Simulation(
            FDMethod(params, 2),
            Decomposition(shape, (2, 2), periodic=(True, True)),
            fields,
        )

    ref = build()
    ref.step(5)

    sim = build()
    ex = GraphExecutor(sim, plan_graph(sim.decomp, sim.methods, 5))
    ex.run()
    got, want = sim.global_state(), ref.global_state()
    for name in want:
        assert np.array_equal(got[name], want[name]), name
    assert all(sub.step == 5 for sub in sim.subs)
