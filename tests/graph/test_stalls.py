"""The stall rule: fires by name on an injected slow rank, stays silent
on a balanced run."""

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import FDMethod, FluidParams
from repro.graph import (
    GraphExecutor,
    HeartbeatStallDetector,
    StallDetector,
    plan_graph,
)

PARAMS = FluidParams.lattice(2, nu=0.05)


def _sim():
    shape = (32, 24)
    fields = {
        "rho": np.ones(shape),
        "u": np.zeros(shape),
        "v": np.zeros(shape),
    }
    return Simulation(
        FDMethod(PARAMS, 2),
        Decomposition(shape, (2, 1), periodic=(True, True)),
        fields,
    )


def test_executor_stall_fires_on_slow_rank():
    sim = _sim()
    graph = plan_graph(sim.decomp, sim.methods, 4)
    ex = GraphExecutor(
        sim, graph, step_delays=[0.08, 0.0],
        stall_factor=1.5, stall_floor=0.01,
    )
    ex.run()
    assert ex.stalls, "injected slow rank produced no stall events"
    # the slow rank is named: everything late belongs to rank 0's orbit
    assert any(e.rank == 0 or ":from0" in e.label for e in ex.stalls)
    for e in ex.stalls:
        assert e.waited > 1.5 * e.cost


def test_executor_silent_when_balanced():
    sim = _sim()
    graph = plan_graph(sim.decomp, sim.methods, 4)
    ex = GraphExecutor(sim, graph, stall_factor=50.0, stall_floor=1.0)
    ex.run()
    assert ex.stalls == []


def test_stall_detector_unit():
    """The node-granular rule, driven with synthetic timestamps."""
    sim = _sim()
    graph = plan_graph(sim.decomp, sim.methods, 1)
    node = graph.nodes[0]
    det = StallDetector(factor=2.0, floor=0.01)
    det.node_ready(node, now=0.0)
    assert det.check(now=0.005) == []
    events = det.check(now=2.0 * node.cost + 0.02)
    assert [e.label for e in events] == [node.label]
    # flagged once, not re-reported
    assert det.check(now=10.0) == []
    det.node_done(node.id)


def test_heartbeat_detector_fires_when_feeders_ahead():
    sim = _sim()
    graph = plan_graph(sim.decomp, sim.methods, 6)
    det = HeartbeatStallDetector(graph, factor=2.0, floor=0.01)
    cost = graph.step_cost(0)
    # first sight of (rank, step) arms the timer
    assert det.observe({0: 3, 1: 5}, now=0.0) == []
    # rank 0 still on 3 with its feeder past it, far beyond the budget
    events = det.observe({0: 3, 1: 5}, now=2.0 * cost + 0.02)
    assert [e.rank for e in events] == [0]
    assert events[0].label == "step:r0:t3"
    # one report per (rank, step)
    assert det.observe({0: 3, 1: 5}, now=99.0) == []


def test_heartbeat_detector_silent_when_feeder_behind():
    """A rank waiting on a *behind* neighbour is not stalled — the
    neighbour is the problem, not this rank."""
    sim = _sim()
    graph = plan_graph(sim.decomp, sim.methods, 6)
    det = HeartbeatStallDetector(graph, factor=2.0, floor=0.01)
    det.observe({0: 3, 1: 2}, now=0.0)
    events = det.observe({0: 3, 1: 2}, now=50.0)
    assert all(e.rank != 0 for e in events), \
        "stall blamed on a rank whose dependencies were not ready"
    # the *behind* rank with its feeder ahead is the real stall
    assert [e.rank for e in events] == [1]


def test_heartbeat_detector_silent_on_progress():
    sim = _sim()
    graph = plan_graph(sim.decomp, sim.methods, 6)
    det = HeartbeatStallDetector(graph, factor=2.0, floor=0.01)
    for t in range(5):
        assert det.observe({0: t, 1: t}, now=0.1 * t) == []
