"""The planner: deterministic, serializable, structurally correct DAGs."""

import numpy as np
import pytest

from repro.core import Decomposition
from repro.fluids import FDMethod, FluidParams, LBMethod
from repro.graph import (
    GRAPH_SCHEMA_VERSION,
    TaskGraph,
    plan_graph,
)

PARAMS = FluidParams.lattice(2, nu=0.05)


def _fd_plan(blocks=(2, 1), steps=3, **kw):
    decomp = Decomposition((32, 24), blocks, periodic=(True, True))
    methods = [FDMethod(PARAMS, 2) for _ in decomp.active_blocks()]
    return plan_graph(decomp, methods, steps, **kw)


def test_deterministic_serialization():
    """Same spec, same text — twice, from scratch."""
    a = _fd_plan(steps=4, diag_every=2, save_every=4)
    b = _fd_plan(steps=4, diag_every=2, save_every=4)
    assert a.to_json() == b.to_json()


def test_round_trip():
    graph = _fd_plan(steps=3, diag_every=3)
    back = TaskGraph.from_json(graph.to_json())
    assert len(back) == len(graph)
    assert back.meta == graph.meta
    for x, y in zip(back.nodes, graph.nodes):
        # costs are canonicalized to 12 decimals in the JSON form
        assert x.cost == pytest.approx(y.cost, abs=1e-12)
        assert (x.id, x.kind, x.rank, x.step, x.phase, x.axis, x.side,
                x.pos, x.src, x.deps) == (
            y.id, y.kind, y.rank, y.step, y.phase, y.axis, y.side,
            y.pos, y.src, y.deps)


def test_schema_version_rejected():
    graph = _fd_plan(steps=1)
    text = graph.to_json().replace(
        f'"version":{GRAPH_SCHEMA_VERSION}', '"version":99'
    )
    with pytest.raises(ValueError, match="schema"):
        TaskGraph.from_json(text)


def test_validate_is_topological():
    """Ids are dense, every dependency points backwards."""
    graph = _fd_plan(steps=3, diag_every=1, save_every=2)
    graph.validate()
    for node in graph.nodes:
        assert all(d < node.id for d in node.deps), node.label


def test_node_counts_fd():
    steps, n_ranks = 3, 2
    graph = _fd_plan(blocks=(n_ranks, 1), steps=steps)
    counts = graph.counts()
    nphases = len(FDMethod(PARAMS, 2).exchange_phases)
    assert counts["compute"] == steps * n_ranks * nphases
    assert counts["finalize"] == steps * n_ranks
    assert counts.get("exchange", 0) > 0
    assert "diag" not in counts and "checkpoint" not in counts


def test_periodic_node_cadence():
    graph = _fd_plan(steps=6, diag_every=2, save_every=3)
    diag_steps = sorted(n.step for n in graph.nodes if n.kind == "diag")
    assert diag_steps == [1, 3, 5]
    ckpt_steps = sorted({n.step for n in graph.nodes
                         if n.kind == "checkpoint"})
    assert ckpt_steps == [2, 5]


def test_rank_slice_and_step_cost():
    graph = _fd_plan(blocks=(2, 1), steps=4)
    for rank in (0, 1):
        for node in graph.rank_slice(rank):
            assert node.rank == rank or node.src == rank
        assert graph.step_cost(rank) > 0.0
    # the critical path can never exceed the serial sum of all costs
    assert graph.critical_path() <= sum(n.cost for n in graph.nodes) + 1e-12


def test_lb_plan_single_phase():
    decomp = Decomposition((32, 24), (2, 1), periodic=(True, True))
    methods = [LBMethod(PARAMS, 2) for _ in decomp.active_blocks()]
    graph = plan_graph(decomp, methods, 2)
    nphases = len(LBMethod(PARAMS, 2).exchange_phases)
    assert graph.counts()["compute"] == 2 * 2 * nphases
    assert graph.meta["nphases"] == nphases


def test_hybrid_seam_edges():
    """Converter edges become per-step seam nodes and are removed from
    the regular exchange set."""
    decomp = Decomposition((32, 24), (2, 1), periodic=(True, True))
    methods = [FDMethod(PARAMS, 2), LBMethod(PARAMS, 2)]
    edges = ((0, 1), (1, 0))
    steps = 3
    graph = plan_graph(decomp, methods, steps, converter_edges=edges)
    seams = [n for n in graph.nodes if n.kind == "seam"]
    assert seams, "hybrid plan produced no seam nodes"
    assert {(n.rank, n.src) for n in seams} == set(edges)
    for n in graph.nodes:
        if n.kind == "exchange":
            assert (n.rank, n.src) not in set(edges), n.label
    assert graph.meta["converter_edges"] == sorted(list(e) for e in edges)


def test_rates_shift_costs():
    """Faster ranks get cheaper compute nodes; the exchange cost model
    reacts to bandwidth."""
    slow = _fd_plan(steps=1, rates={0: 1e5, 1: 1e5})
    fast = _fd_plan(steps=1, rates={0: 1e6, 1: 1e6})
    cost = lambda g: sum(n.cost for n in g.nodes if n.kind == "compute")
    assert cost(fast) < cost(slow)
    thin = _fd_plan(steps=1, bandwidth=1e5)
    wide = _fd_plan(steps=1, bandwidth=1e9)
    comm = lambda g: sum(n.cost for n in g.nodes if n.kind == "exchange")
    assert comm(wide) < comm(thin)


def test_mismatched_methods_rejected():
    decomp = Decomposition((32, 24), (2, 1), periodic=(True, True))
    with pytest.raises(ValueError, match="methods"):
        plan_graph(decomp, [FDMethod(PARAMS, 2)], 1)
    with pytest.raises(ValueError, match="steps"):
        plan_graph(decomp, [FDMethod(PARAMS, 2)] * 2, -1)


def test_checkpoint_blocks_next_step():
    """The next step's first compute on a rank waits on that rank's
    checkpoint (dumps include ghosts the next fills overwrite)."""
    graph = _fd_plan(steps=2, save_every=1)
    ckpt = {n.rank: n.id for n in graph.nodes
            if n.kind == "checkpoint" and n.step == 0}
    for n in graph.nodes:
        if n.kind == "compute" and n.step == 1 and n.phase == 0:
            assert ckpt[n.rank] in n.deps, n.label
