"""App. D: the UDP/datagram transport with acknowledgment/retransmit."""

import threading

import numpy as np
import pytest

from repro.core import Decomposition, LocalExchanger, build_plan, make_subregions
from repro.net import PortRegistry, SocketExchanger, UdpChannelSet


def _open_mesh(tmp_path, neighbor_map, **kw):
    reg = PortRegistry(tmp_path / "udports.txt")
    sets = {
        r: UdpChannelSet(r, nbrs, reg, **kw)
        for r, nbrs in neighbor_map.items()
    }
    errors = []

    def opener(cs):
        try:
            cs.open(0, timeout=10.0)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=opener, args=(cs,)) for cs in sets.values()
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return sets


class TestBasics:
    def test_pair_roundtrip(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        sets[0].send_data(1, b"datagram!", step=3, phase=0, axis=0, side=1)
        got = sets[1].recv_data({(3, 0, 0, 1, 0)}, timeout=5.0)
        assert got[(3, 0, 0, 1, 0)] == b"datagram!"
        for cs in sets.values():
            cs.close()

    def test_fragmentation(self, tmp_path):
        """Strips larger than a datagram travel as reassembled fragments."""
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        payload = np.arange(20_000, dtype=np.float64).tobytes()  # 160 kB
        sets[0].send_data(1, payload, step=0, phase=0, axis=0, side=1)
        got = sets[1].recv_data({(0, 0, 0, 1, 0)}, timeout=10.0)
        assert got[(0, 0, 0, 1, 0)] == payload
        assert sets[0].datagrams_sent >= 5  # it really fragmented
        for cs in sets.values():
            cs.close()

    def test_out_of_order_buffering(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        sets[0].send_data(1, b"s0", step=0, phase=0, axis=0, side=1)
        sets[0].send_data(1, b"s1", step=1, phase=0, axis=0, side=1)
        got1 = sets[1].recv_data({(1, 0, 0, 1, 0)}, timeout=5.0)
        assert got1[(1, 0, 0, 1, 0)] == b"s1"
        got0 = sets[1].recv_data({(0, 0, 0, 1, 0)}, timeout=5.0)
        assert got0[(0, 0, 0, 1, 0)] == b"s0"
        for cs in sets.values():
            cs.close()

    def test_self_neighbor_rejected(self, tmp_path):
        reg = PortRegistry(tmp_path / "p.txt")
        with pytest.raises(ValueError):
            UdpChannelSet(0, [0, 1], reg)

    def test_recv_timeout(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        with pytest.raises(TimeoutError):
            sets[0].recv_data({(9, 0, 0, 1, 1)}, timeout=0.2)
        for cs in sets.values():
            cs.close()


def _serve(channel, stop):
    """Service a channel's socket + retransmit timers in a thread.

    Retransmission runs inside ``recv_data``/``close`` (single-threaded,
    select-driven, as App. D era code would be), so a sender that never
    enters a receive must be serviced explicitly; in the real exchange
    pattern every send is followed by a receive in the same phase.
    """
    while not stop.is_set():
        channel._pump(0.01)


class TestReliability:
    """The App. D 'considerable effort': delivery over a lossy wire."""

    def test_delivery_under_heavy_loss(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]},
                          rto=0.02, loss_rate=0.3, loss_seed=1)
        payload = np.arange(5000, dtype=np.float64).tobytes()
        for step in range(5):
            sets[0].send_data(1, payload, step=step, phase=0, axis=0,
                              side=1)
        stop = threading.Event()
        server = threading.Thread(target=_serve, args=(sets[0], stop))
        server.start()
        try:
            got = {}
            for step in range(5):
                got.update(
                    sets[1].recv_data({(step, 0, 0, 1, 0)}, timeout=30.0)
                )
        finally:
            stop.set()
            server.join()
        for step in range(5):
            assert got[(step, 0, 0, 1, 0)] == payload
        # losses actually happened and retransmission repaired them
        lost = sets[0].datagrams_lost + sets[1].datagrams_lost
        assert lost > 0
        assert sets[0].retransmissions > 0
        for cs in sets.values():
            cs.close()

    def test_duplicates_suppressed(self, tmp_path):
        """Lost ACKs cause re-sends of delivered data; the receiver must
        drop the duplicates."""
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]},
                          rto=0.01, loss_rate=0.4, loss_seed=3)
        sets[0].send_data(1, b"once only", step=0, phase=0, axis=0, side=1)
        stop = threading.Event()
        server = threading.Thread(target=_serve, args=(sets[0], stop))
        server.start()
        try:
            got = sets[1].recv_data({(0, 0, 0, 1, 0)}, timeout=30.0)
        finally:
            stop.set()
            server.join()
        assert got[(0, 0, 0, 1, 0)] == b"once only"
        # let the sender finish retransmitting until fully acked, with
        # the receiver re-ACKing duplicates
        stop2 = threading.Event()
        server2 = threading.Thread(target=_serve, args=(sets[1], stop2))
        server2.start()
        try:
            sets[0].close(flush_timeout=30.0)
        finally:
            stop2.set()
            server2.join()
        assert not sets[0]._unacked
        assert sets[1].duplicates_dropped >= 0  # counter exists and sane
        sets[1].close()

    def test_close_flushes_unacked(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]}, rto=0.01,
                          loss_rate=0.3, loss_seed=5)
        sets[0].send_data(1, b"flush me", step=0, phase=0, axis=0, side=1)

        # receiver services its socket in a thread while sender flushes
        stop = threading.Event()

        def serve():
            while not stop.is_set():
                sets[1]._pump(0.01)

        t = threading.Thread(target=serve)
        t.start()
        try:
            sets[0].close(flush_timeout=20.0)
            assert not sets[0]._unacked
        finally:
            stop.set()
            t.join()
        assert sets[1].recv_data({(0, 0, 0, 1, 0)}, timeout=1.0)
        sets[1].close()


class TestExchangerIntegration:
    def test_udp_exchange_matches_local(self, tmp_path):
        """The SocketExchanger drives UDP channels identically."""
        shape = (20, 16)
        rng = np.random.default_rng(2)
        a = rng.random(shape)
        d = Decomposition(shape, (2, 2))
        pad = 3
        subs_udp = make_subregions(d, pad, {"a": a})
        subs_loc = make_subregions(d, pad, {"a": a})
        for group in (subs_udp, subs_loc):
            for sub in group:
                mask = np.ones(sub.padded_shape, dtype=bool)
                mask[sub.interior] = False
                sub.fields["a"][mask] = -1.0
        LocalExchanger(d, subs_loc).exchange(["a"])

        reg = PortRegistry(tmp_path / "p.txt")
        plans = {s.block.rank: build_plan(d, s.block.rank, pad)
                 for s in subs_udp}
        errors = []

        def run(sub):
            rank = sub.block.rank
            nbrs = {
                op.neighbor_rank for op in plans[rank].recv_ops()
            } - {rank}
            cs = UdpChannelSet(rank, nbrs, reg, loss_rate=0.15,
                               loss_seed=11, rto=0.02)
            try:
                cs.open(0, timeout=10.0)
                SocketExchanger(sub, plans[rank], cs).exchange(
                    ["a"], phase=0
                )
                cs.close(flush_timeout=10.0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(s,))
                   for s in subs_udp]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        for su, sl in zip(subs_udp, subs_loc):
            np.testing.assert_array_equal(su.fields["a"], sl.fields["a"])
