"""SocketExchanger: ghost exchange over real TCP equals LocalExchanger."""

import threading

import numpy as np
import pytest

from repro.core import Decomposition, LocalExchanger, build_plan, make_subregions
from repro.net import ChannelSet, PortRegistry, SocketExchanger


def _socket_exchange(tmp_path, decomp, subs, field_names, pad,
                     extended=False):
    """Run one socket exchange across threads (one per subregion)."""
    reg = PortRegistry(tmp_path / "ports.txt")
    plans = {s.block.rank: build_plan(decomp, s.block.rank, pad)
             for s in subs}
    sets = {}
    for s in subs:
        nbrs = {op.neighbor_rank for op in plans[s.block.rank].recv_ops()}
        nbrs -= {s.block.rank}
        sets[s.block.rank] = ChannelSet(s.block.rank, nbrs, reg)
    errors = []

    def run(sub):
        rank = sub.block.rank
        cs = sets[rank]
        try:
            cs.open(0, timeout=10.0)
            ex = SocketExchanger(sub, plans[rank], cs,
                                 extended_sweep=extended)
            ex.exchange(field_names, phase=0)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            cs.close()

    threads = [threading.Thread(target=run, args=(s,)) for s in subs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors


@pytest.mark.parametrize(
    "blocks,periodic",
    [
        ((2, 1), (False, False)),
        ((2, 2), (False, False)),
        ((2, 2), (True, True)),
        ((3, 2), (True, False)),
    ],
    ids=["2x1", "2x2", "2x2per", "3x2mixed"],
)
def test_socket_matches_local(tmp_path, blocks, periodic):
    shape = (20, 16)
    rng = np.random.default_rng(5)
    a = rng.random(shape)
    b = rng.random((4,) + shape)  # component field, like LB populations
    d = Decomposition(shape, blocks, periodic=periodic)
    pad = 3

    subs_sock = make_subregions(d, pad, {"a": a, "b": b})
    subs_local = make_subregions(d, pad, {"a": a, "b": b})
    for group in (subs_sock, subs_local):
        for sub in group:
            mask = np.ones(sub.padded_shape, dtype=bool)
            mask[sub.interior] = False
            sub.fields["a"][mask] = -7.0
            sub.fields["b"][:, mask] = -7.0

    LocalExchanger(d, subs_local).exchange(["a", "b"])
    _socket_exchange(tmp_path, d, subs_sock, ["a", "b"], pad)

    for s_sock, s_loc in zip(subs_sock, subs_local):
        np.testing.assert_array_equal(s_sock.fields["a"], s_loc.fields["a"])
        np.testing.assert_array_equal(s_sock.fields["b"], s_loc.fields["b"])


def test_socket_extended_sweep_with_inactive_block(tmp_path):
    """Corner routing around an inactive block over real sockets."""
    shape = (16, 16)
    solid = np.zeros(shape, dtype=bool)
    solid[:8, :8] = True
    d = Decomposition(shape, (2, 2), solid=solid)
    rng = np.random.default_rng(6)
    a = rng.random(shape)
    pad = 2

    subs_sock = make_subregions(d, pad, {"a": a}, solid)
    subs_local = make_subregions(d, pad, {"a": a}, solid)
    for group in (subs_sock, subs_local):
        for sub in group:
            mask = np.ones(sub.padded_shape, dtype=bool)
            mask[sub.interior] = False
            # leave hold ghosts: scramble only exchanged regions by
            # scrambling everything, then the exchange must restore all
            # recv/replicate regions identically in both transports
            sub.fields["a"][mask] = -3.0

    LocalExchanger(d, subs_local).exchange(["a"])
    _socket_exchange(tmp_path, d, subs_sock, ["a"], pad, extended=True)
    for s_sock, s_loc in zip(subs_sock, subs_local):
        np.testing.assert_array_equal(s_sock.fields["a"], s_loc.fields["a"])


def test_traffic_accounting(tmp_path):
    """Message and byte counters reflect the §6 pattern (one exchange =
    one message per neighbour per axis pass)."""
    shape = (20, 16)
    d = Decomposition(shape, (2, 1))
    a = np.random.default_rng(0).random(shape)
    subs = make_subregions(d, 3, {"a": a})
    reg = PortRegistry(tmp_path / "ports.txt")
    plans = {s.block.rank: build_plan(d, s.block.rank, 3) for s in subs}
    counters = {}
    errors = []

    def run(sub):
        rank = sub.block.rank
        cs = ChannelSet(rank, {1 - rank}, reg)
        try:
            cs.open(0, timeout=10.0)
            ex = SocketExchanger(sub, plans[rank], cs)
            ex.exchange(["a"], phase=0)
            counters[rank] = (ex.messages_sent, ex.bytes_sent)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)
        finally:
            cs.close()

    threads = [threading.Thread(target=run, args=(s,)) for s in subs]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    # one neighbour, on one axis: exactly 1 message per exchange
    assert counters[0][0] == 1
    # strip: 3 wide x (16 + 2*3) across x 8 bytes
    assert counters[0][1] == 3 * 22 * 8
