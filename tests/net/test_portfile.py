"""Shared-file port registry (the paper's flock handshake)."""

import threading

import pytest

from repro.net import PortRegistry


class TestRegistry:
    def test_register_and_read(self, tmp_path):
        reg = PortRegistry(tmp_path / "ports.txt")
        reg.register(0, 0, "127.0.0.1", 5000)
        reg.register(0, 1, "127.0.0.1", 5001)
        assert reg.read(0) == {
            0: ("127.0.0.1", 5000),
            1: ("127.0.0.1", 5001),
        }

    def test_generations_are_separate(self, tmp_path):
        reg = PortRegistry(tmp_path / "ports.txt")
        reg.register(0, 0, "h", 5000)
        reg.register(1, 0, "h", 6000)
        assert reg.read(0)[0] == ("h", 5000)
        assert reg.read(1)[0] == ("h", 6000)

    def test_last_write_wins(self, tmp_path):
        reg = PortRegistry(tmp_path / "ports.txt")
        reg.register(0, 0, "h", 5000)
        reg.register(0, 0, "h", 5999)
        assert reg.read(0)[0] == ("h", 5999)

    def test_read_missing_file(self, tmp_path):
        reg = PortRegistry(tmp_path / "nothing.txt")
        assert reg.read(0) == {}

    def test_wait_for_success(self, tmp_path):
        reg = PortRegistry(tmp_path / "ports.txt")
        reg.register(0, 0, "h", 5000)

        def late():
            reg.register(0, 1, "h", 5001)

        t = threading.Timer(0.05, late)
        t.start()
        try:
            got = reg.wait_for(0, {0, 1}, timeout=5.0)
        finally:
            t.join()
        assert got == {0: ("h", 5000), 1: ("h", 5001)}

    def test_wait_for_timeout(self, tmp_path):
        reg = PortRegistry(tmp_path / "ports.txt")
        with pytest.raises(TimeoutError, match=r"\[3\]"):
            reg.wait_for(0, {3}, timeout=0.1, poll=0.02)

    def test_concurrent_registration(self, tmp_path):
        """Many threads appending under flock never interleave lines."""
        reg = PortRegistry(tmp_path / "ports.txt")
        n = 32

        def worker(rank):
            reg.register(0, rank, f"host{rank}", 5000 + rank)

        threads = [
            threading.Thread(target=worker, args=(r,)) for r in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        entries = reg.read(0)
        assert len(entries) == n
        for rank in range(n):
            assert entries[rank] == (f"host{rank}", 5000 + rank)

    def test_garbage_lines_ignored(self, tmp_path):
        path = tmp_path / "ports.txt"
        reg = PortRegistry(path)
        reg.register(0, 0, "h", 5000)
        with open(path, "a") as fh:
            fh.write("not a registration\n")
        assert reg.read(0) == {0: ("h", 5000)}
