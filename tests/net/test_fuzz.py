"""Adversarial input handling: garbage on the wire must fail loudly,
never hang or corrupt."""

import socket

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import ProtocolError, pack_frame, recv_frame
from repro.net.protocol import HEADER_SIZE, MSG_DATA
from repro.net.udp import UdpChannelSet, _HEADER, _MAGIC, _VERSION
from repro.net.portfile import PortRegistry


class TestTcpFrameFuzz:
    @given(st.binary(min_size=HEADER_SIZE, max_size=HEADER_SIZE + 64))
    @settings(max_examples=40, deadline=None)
    def test_random_bytes_rejected_or_parsed(self, blob):
        """Arbitrary bytes either parse as a frame (if they happen to
        carry the magic and a consistent length) or raise ProtocolError
        — never an unhandled exception, never a hang."""
        a, b = socket.socketpair()
        try:
            a.sendall(blob)
            a.close()
            try:
                header, payload = recv_frame(b)
                # if it parsed, the magic must really have been there
                assert blob[:4] == b"SKRD"
                assert len(payload) == header.payload_len
            except ProtocolError:
                pass
        finally:
            b.close()

    @given(st.integers(0, 2**31 - 1), st.binary(max_size=256))
    @settings(max_examples=25, deadline=None)
    def test_valid_frames_always_roundtrip(self, sender, payload):
        a, b = socket.socketpair()
        try:
            a.sendall(pack_frame(MSG_DATA, sender, payload, step=1))
            header, got = recv_frame(b)
            assert header.sender == sender
            assert got == payload
        finally:
            a.close()
            b.close()


class TestUdpDatagramFuzz:
    def _channel(self, tmp_path):
        reg = PortRegistry(tmp_path / "p.txt")
        cs = UdpChannelSet(0, [1], reg)
        # open without a peer: register and bind only
        cs.generation = 0
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        cs._sock = sock
        cs._addrs = {1: ("127.0.0.1", 1)}  # never actually sent to
        return cs

    @given(st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_garbage_datagrams_raise_protocol_error(
        self, tmp_path_factory, blob
    ):
        cs = self._channel(tmp_path_factory.mktemp("udp"))
        try:
            if (
                len(blob) >= _HEADER.size
                and blob[:4] == _MAGIC
                and blob[4] == _VERSION
            ):
                return  # astronomically unlikely; not the case under test
            with pytest.raises(ProtocolError):
                cs._handle_packet(blob, ("127.0.0.1", 9))
        finally:
            cs._sock.close()

    def test_truncated_payload_detected(self, tmp_path):
        cs = self._channel(tmp_path)
        try:
            pkt = _HEADER.pack(
                _MAGIC, _VERSION, 1, 1, 0, 0, 0, 0, 0, 0, 1, 500
            ) + b"short"
            with pytest.raises(ProtocolError, match="truncated"):
                cs._handle_packet(pkt, ("127.0.0.1", 9))
        finally:
            cs._sock.close()

    def test_unknown_packet_type(self, tmp_path):
        cs = self._channel(tmp_path)
        try:
            pkt = _HEADER.pack(
                _MAGIC, _VERSION, 77, 1, 0, 0, 0, 0, 0, 0, 1, 0
            )
            with pytest.raises(ProtocolError, match="type"):
                cs._handle_packet(pkt, ("127.0.0.1", 9))
        finally:
            cs._sock.close()
