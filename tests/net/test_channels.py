"""TCP channel management: handshake, FCFS receives, buffering."""

import threading

import pytest

from repro.net import ChannelSet, PortRegistry


def _open_mesh(tmp_path, neighbor_map, generation=0):
    """Open a mesh of ChannelSets concurrently (one thread per rank)."""
    reg = PortRegistry(tmp_path / "ports.txt")
    sets = {
        r: ChannelSet(r, nbrs, reg) for r, nbrs in neighbor_map.items()
    }
    errors = []

    def opener(cs):
        try:
            cs.open(generation, timeout=10.0)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=opener, args=(cs,)) for cs in sets.values()
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return sets


class TestHandshake:
    def test_pair(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        sets[0].send_data(1, b"hello", step=0, phase=0, axis=0, side=1)
        got = sets[1].recv_data({(0, 0, 0, 1, 0)}, timeout=5.0)
        assert got[(0, 0, 0, 1, 0)] == b"hello"
        for cs in sets.values():
            cs.close()

    def test_chain_of_three(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0, 2], 2: [1]})
        assert set(sets[1]._socks) == {0, 2}
        for cs in sets.values():
            cs.close()

    def test_self_neighbor_rejected(self, tmp_path):
        reg = PortRegistry(tmp_path / "ports.txt")
        with pytest.raises(ValueError):
            ChannelSet(0, [0, 1], reg)

    def test_reopen_next_generation(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        for cs in sets.values():
            cs.close()
        # re-open under generation 1 (what happens after a migration)
        errors = []

        def reopen(cs):
            try:
                cs.open(1, timeout=10.0)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=reopen, args=(cs,))
            for cs in sets.values()
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        sets[1].send_data(0, b"again", step=5, phase=0, axis=0, side=-1)
        got = sets[0].recv_data({(5, 0, 0, -1, 1)}, timeout=5.0)
        assert got[(5, 0, 0, -1, 1)] == b"again"
        for cs in sets.values():
            cs.close()


class TestReceiveSemantics:
    def test_out_of_order_buffering(self, tmp_path):
        """Frames from a neighbour running ahead (App. A) are buffered
        until the receiver needs them."""
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        # rank 0 sends two steps' worth before rank 1 reads anything
        sets[0].send_data(1, b"s0", step=0, phase=0, axis=0, side=1)
        sets[0].send_data(1, b"s1", step=1, phase=0, axis=0, side=1)
        # rank 1 asks for step 1 *first*: step 0 frame gets buffered
        got1 = sets[1].recv_data({(1, 0, 0, 1, 0)}, timeout=5.0)
        assert got1[(1, 0, 0, 1, 0)] == b"s1"
        got0 = sets[1].recv_data({(0, 0, 0, 1, 0)}, timeout=5.0)
        assert got0[(0, 0, 0, 1, 0)] == b"s0"
        for cs in sets.values():
            cs.close()

    def test_fcfs_multiple_senders(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1, 2], 1: [0], 2: [0]})
        sets[1].send_data(0, b"from1", step=0, phase=0, axis=0, side=-1)
        sets[2].send_data(0, b"from2", step=0, phase=0, axis=0, side=1)
        keys = {(0, 0, 0, -1, 1), (0, 0, 0, 1, 2)}
        got = sets[0].recv_data(keys, timeout=5.0)
        assert got[(0, 0, 0, -1, 1)] == b"from1"
        assert got[(0, 0, 0, 1, 2)] == b"from2"
        for cs in sets.values():
            cs.close()

    def test_strict_order_mode(self, tmp_path):
        """App. C's fixed-order draining still delivers everything."""
        sets = _open_mesh(tmp_path, {0: [1, 2], 1: [0], 2: [0]})
        sets[2].send_data(0, b"late-rank-first", step=0, phase=0, axis=0,
                          side=1)
        sets[1].send_data(0, b"low-rank", step=0, phase=0, axis=0, side=-1)
        keys = {(0, 0, 0, -1, 1), (0, 0, 0, 1, 2)}
        got = sets[0].recv_data(keys, timeout=5.0, strict_order=True)
        assert len(got) == 2
        for cs in sets.values():
            cs.close()

    def test_recv_timeout(self, tmp_path):
        sets = _open_mesh(tmp_path, {0: [1], 1: [0]})
        with pytest.raises(TimeoutError):
            sets[0].recv_data({(9, 0, 0, 1, 1)}, timeout=0.2)
        for cs in sets.values():
            cs.close()
