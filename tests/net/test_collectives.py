"""Collectives: schedule correctness, determinism, and all three backends.

The ISSUE acceptance bar: allreduce(sum/max) across 2-8 ranks matches the
serial reduction bit-for-bit for float64 scalars — and to <= 1e-12 for
chunked arrays — under TCP, UDP with loss injection, and the in-process
backend, for both the binomial-tree and ring algorithms.
"""

import functools
import os
import threading

import numpy as np
import pytest

from repro.net import (
    ChannelSet,
    Communicator,
    LocalFabric,
    PortRegistry,
    UdpChannelSet,
    build_schedule,
    collective_pattern,
    drive_all,
)

UDP_LOSS = float(os.environ.get("REPRO_UDP_LOSS", "0.05"))

ALGORITHMS = ("tree", "ring")


def _serial_fold(parts, ufunc):
    """Rank-ordered fold — the bitwise reference for every reduction."""
    return functools.reduce(ufunc, parts)


# ----------------------------------------------------------------------
# pure schedules (no sockets, no threads): drive_all round-robin
# ----------------------------------------------------------------------
class TestSchedules:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_allgather(self, algorithm, n):
        payloads = [f"rank{r}".encode() for r in range(n)]
        gens = {
            r: build_schedule("allgather", algorithm, r, n, payloads[r])
            for r in range(n)
        }
        results = drive_all(gens)
        for r in range(n):
            assert results[r] == payloads

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("root", [0, 2])
    def test_broadcast(self, algorithm, root):
        n = 5
        gens = {
            r: build_schedule(
                "broadcast", algorithm, r, n,
                b"the word" if r == root else None, root=root,
            )
            for r in range(n)
        }
        results = drive_all(gens)
        assert all(results[r] == b"the word" for r in range(n))

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_barrier_completes(self, algorithm):
        n = 6
        gens = {
            r: build_schedule("barrier", algorithm, r, n, b"")
            for r in range(n)
        }
        drive_all(gens)  # must not deadlock

    def test_pattern_counts_tree(self):
        # binomial tree: n-1 up + n-1 down for an allreduce of a small
        # payload (gather + broadcast)
        msgs = collective_pattern("allreduce", "tree", 4, 16)
        assert len(msgs) == 6
        assert all(nbytes >= 16 for _, _, nbytes in msgs)

    def test_pattern_counts_ring(self):
        # ring allgather: (n-1) rounds of n messages for the gather,
        # then the fold is local — 12 messages at n = 4
        msgs = collective_pattern("allreduce", "ring", 4, 16)
        assert len(msgs) == 12

    def test_pattern_is_deterministic(self):
        a = collective_pattern("allreduce", "tree", 8, 64)
        b = collective_pattern("allreduce", "tree", 8, 64)
        assert a == b


# ----------------------------------------------------------------------
# live Communicator over all three backends
# ----------------------------------------------------------------------
def _run_ranks(n, fn):
    """Run ``fn(rank)`` on one thread per rank; return results by rank."""
    results = [None] * n
    errors = []

    def run(r):
        try:
            results[r] = fn(r)
        except Exception as exc:
            errors.append((r, exc))

    threads = [threading.Thread(target=run, args=(r,)) for r in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


def _with_comms(backend, n, tmp_path, algorithm, fn, chunk_bytes=1 << 18):
    """Call ``fn(comm)`` per rank over the requested transport.

    TCP and UDP ranks start with only their ring neighbours connected —
    tree collectives must establish the missing links on demand through
    the port registry.
    """
    if backend == "local":
        fabric = LocalFabric(n)

        def worker(r):
            comm = Communicator(
                fabric.channel_set(r), r, n,
                algorithm=algorithm, chunk_bytes=chunk_bytes,
            )
            return fn(comm)

        return _run_ranks(n, worker)

    reg = PortRegistry(tmp_path / "ports.txt")

    def worker(r):
        nbrs = {(r - 1) % n, (r + 1) % n} - {r}
        if backend == "tcp":
            cs = ChannelSet(r, nbrs, reg)
        else:
            cs = UdpChannelSet(
                r, nbrs, reg, rto=0.02,
                loss_rate=UDP_LOSS, loss_seed=11,
            )
        cs.open(0, timeout=15.0)
        try:
            comm = Communicator(
                cs, r, n, algorithm=algorithm,
                chunk_bytes=chunk_bytes, timeout=60.0, link_timeout=15.0,
            )
            return fn(comm)
        finally:
            if backend == "udp":
                # every collective already completed; do not let a lost
                # final ACK stretch the flush
                cs.close(flush_timeout=1.0)
            else:
                cs.close()

    return _run_ranks(n, worker)


BACKEND_RANKS = [
    ("local", 2), ("local", 3), ("local", 5), ("local", 8),
    ("tcp", 2), ("tcp", 4), ("tcp", 8),
    ("udp", 2), ("udp", 4),
]


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("backend,n", BACKEND_RANKS)
class TestAllreduceEverywhere:
    def test_scalar_bitwise(self, backend, n, tmp_path, algorithm):
        """Scalar sum and max equal the serial fold bit for bit."""
        values = [np.float64((-1.0) ** r * np.pi / (r + 1)) for r in range(n)]
        want_sum = _serial_fold(values, np.add)
        want_max = _serial_fold(values, np.maximum)

        def fn(comm):
            s = comm.allreduce(values[comm.rank], "sum")
            m = comm.allreduce(values[comm.rank], "max")
            return s, m

        for s, m in _with_comms(backend, n, tmp_path, algorithm, fn):
            # equality of float64 bit patterns, not approximate
            assert np.float64(s).tobytes() == want_sum.tobytes()
            assert np.float64(m).tobytes() == want_max.tobytes()

    def test_chunked_array(self, backend, n, tmp_path, algorithm):
        """Arrays above the chunk size combine to <= 1e-12, same on all
        ranks."""
        size = 600  # 4800 B at chunk_bytes=1024 -> several chunks
        rng = np.random.default_rng(42)
        values = [rng.standard_normal(size) for _ in range(n)]
        want = _serial_fold(values, np.add)

        def fn(comm):
            return comm.allreduce(values[comm.rank], "sum")

        results = _with_comms(
            backend, n, tmp_path, algorithm, fn, chunk_bytes=1024
        )
        for out in results:
            np.testing.assert_allclose(out, want, rtol=0, atol=1e-12)
        for out in results[1:]:
            # whatever rounding the chunked combine produces, every rank
            # must hold the identical bytes
            np.testing.assert_array_equal(out, results[0])


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_mixed_primitives_tcp(tmp_path, algorithm):
    """barrier / broadcast / allgather / reduce interleave on one set of
    channels (sequence numbers keep the frames apart)."""
    n = 4

    def fn(comm):
        comm.barrier()
        arr = comm.broadcast(
            np.arange(5.0) if comm.rank == 1 else None, root=1
        )
        gathered = comm.allgather(np.float64(comm.rank))
        total = comm.reduce(np.float64(comm.rank), "sum", root=2)
        comm.barrier()
        return arr, gathered, total

    results = _with_comms("tcp", n, tmp_path, algorithm, fn)
    for rank, (arr, gathered, total) in enumerate(results):
        np.testing.assert_array_equal(arr, np.arange(5.0))
        assert [float(g) for g in gathered] == [0.0, 1.0, 2.0, 3.0]
        if rank == 2:
            assert float(total) == 6.0
        else:
            assert total is None


def test_algorithms_agree_bitwise(tmp_path):
    """Tree and ring allreduce produce identical bytes (both fold the
    rank-ordered allgather for small payloads)."""
    n = 5
    values = [np.float64(1.0 / 3.0 ** r) for r in range(n)]
    outs = {}
    for algorithm in ALGORITHMS:
        def fn(comm):
            return comm.allreduce(values[comm.rank], "sum")

        outs[algorithm] = _with_comms("local", n, tmp_path, algorithm, fn)
    assert [np.float64(v).tobytes() for v in outs["tree"]] == \
           [np.float64(v).tobytes() for v in outs["ring"]]


def test_on_demand_links_really_missing(tmp_path):
    """A tree collective at n = 8 needs pairs (0,4), (0,2)... that a
    ring-neighbour topology does not have; ensure_links must build
    exactly those."""
    n = 8
    reg = PortRegistry(tmp_path / "ports.txt")
    extra_links = {}

    def worker(r):
        nbrs = {(r - 1) % n, (r + 1) % n}
        cs = ChannelSet(r, nbrs, reg)
        cs.open(0, timeout=15.0)
        try:
            comm = Communicator(cs, r, n, algorithm="tree")
            out = comm.allreduce(np.float64(r), "sum")
            extra_links[r] = sorted(
                p for p in range(n)
                if p != r and cs.has_link(p) and p not in nbrs
            )
            return out
        finally:
            cs.close()

    results = _run_ranks(n, worker)
    assert all(float(v) == float(sum(range(n))) for v in results)
    # rank 0 is the tree root: it talked to 2 and 4 beyond its ring
    # neighbours 1 and 7
    assert extra_links[0] == [2, 4]


def test_token_send_recv(tmp_path):
    """Point-to-point tokens (the message save-barrier currency)."""
    n = 3

    def fn(comm):
        if comm.rank == 0:
            comm.send_token(1, step=7, payload=b"go")
            return b""
        got = comm.recv_token(comm.rank - 1, step=7)
        if comm.rank < n - 1:
            comm.send_token(comm.rank + 1, step=7, payload=got)
        return got

    results = _with_comms("local", n, tmp_path, "tree", fn)
    assert results[1] == b"go"
    assert results[2] == b"go"
