"""Wire protocol framing."""

import socket

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.net import (
    MSG_DATA,
    MSG_HELLO,
    ProtocolError,
    pack_frame,
    recv_frame,
)
from repro.net.protocol import HEADER_SIZE, send_all


def _roundtrip(frame: bytes):
    a, b = socket.socketpair()
    try:
        send_all(a, frame)
        return recv_frame(b)
    finally:
        a.close()
        b.close()


class TestFraming:
    def test_hello_roundtrip(self):
        header, payload = _roundtrip(pack_frame(MSG_HELLO, sender=7))
        assert header.msg_type == MSG_HELLO
        assert header.sender == 7
        assert payload == b""

    def test_data_roundtrip(self):
        body = np.arange(100, dtype=np.float64).tobytes()
        frame = pack_frame(
            MSG_DATA, 3, body, step=42, phase=1, axis=2, side=-1
        )
        header, payload = _roundtrip(frame)
        assert header.step == 42
        assert header.phase == 1
        assert header.axis == 2
        assert header.side == -1
        assert header.payload_len == len(body)
        np.testing.assert_array_equal(
            np.frombuffer(payload), np.arange(100, dtype=np.float64)
        )

    @given(
        st.integers(0, 255),
        st.integers(-(2**31), 2**31 - 1),
        st.integers(0, 2**40),
        st.integers(0, 255),
        st.integers(0, 255),
        st.integers(-1, 1),
        st.binary(max_size=4096),
    )
    @settings(max_examples=30, deadline=None)
    def test_header_roundtrip(
        self, msg_type, sender, step, phase, axis, side, payload
    ):
        frame = pack_frame(
            msg_type, sender, payload, step=step, phase=phase,
            axis=axis, side=side,
        )
        header, got = _roundtrip(frame)
        assert header.msg_type == msg_type
        assert header.sender == sender
        assert header.step == step
        assert header.phase == phase
        assert header.axis == axis
        assert header.side == side
        assert got == payload

    def test_key_identifies_frame(self):
        frame = pack_frame(MSG_DATA, 5, b"x", step=9, phase=1, axis=0,
                           side=1)
        header, _ = _roundtrip(frame)
        assert header.key() == (9, 1, 0, 1, 5)

    def test_multiple_frames_in_order(self):
        a, b = socket.socketpair()
        try:
            send_all(a, pack_frame(MSG_DATA, 1, b"one", step=1))
            send_all(a, pack_frame(MSG_DATA, 1, b"two", step=2))
            h1, p1 = recv_frame(b)
            h2, p2 = recv_frame(b)
            assert (h1.step, p1) == (1, b"one")
            assert (h2.step, p2) == (2, b"two")
        finally:
            a.close()
            b.close()


class TestErrors:
    def test_bad_magic(self):
        a, b = socket.socketpair()
        try:
            frame = bytearray(pack_frame(MSG_HELLO, 0))
            frame[0:4] = b"XXXX"
            send_all(a, bytes(frame))
            with pytest.raises(ProtocolError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_header(self):
        a, b = socket.socketpair()
        try:
            a.sendall(pack_frame(MSG_HELLO, 0)[: HEADER_SIZE // 2])
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                recv_frame(b)
        finally:
            b.close()

    def test_truncated_payload(self):
        a, b = socket.socketpair()
        try:
            frame = pack_frame(MSG_DATA, 0, b"full payload")
            a.sendall(frame[:-4])
            a.close()
            with pytest.raises(ProtocolError, match="closed"):
                recv_frame(b)
        finally:
            b.close()

    def test_bad_version(self):
        a, b = socket.socketpair()
        try:
            frame = bytearray(pack_frame(MSG_HELLO, 0))
            frame[4] = 99  # version byte
            send_all(a, bytes(frame))
            with pytest.raises(ProtocolError, match="version"):
                recv_frame(b)
        finally:
            a.close()
            b.close()
