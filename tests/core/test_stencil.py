"""Stencils and the App. A un-synchronization bounds."""

import pytest
from hypothesis import given, strategies as st

from repro.core import full_stencil, max_unsync_steps, star_stencil
from repro.core.stencil import Stencil


class TestStencilBasics:
    def test_star_2d_offsets(self):
        s = star_stencil(2)
        assert sorted(s.offsets()) == sorted(
            [(1, 0), (-1, 0), (0, 1), (0, -1)]
        )

    def test_full_2d_offsets(self):
        s = full_stencil(2)
        assert len(list(s.offsets())) == 8

    def test_star_3d_neighbor_count(self):
        assert star_stencil(3).n_neighbors == 6

    def test_full_3d_neighbor_count(self):
        assert full_stencil(3).n_neighbors == 26

    def test_reach_widens_offsets_not_neighbors(self):
        s = full_stencil(2, reach=2)
        assert len(list(s.offsets())) == 24  # 5x5 - 1
        assert s.n_neighbors == 8  # block graph unchanged

    def test_star_reach2_offsets(self):
        s = star_stencil(2, reach=2)
        # 2 per direction per axis
        assert len(list(s.offsets())) == 8

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            Stencil(ndim=4, reach=1, full=False)

    def test_invalid_reach(self):
        with pytest.raises(ValueError):
            Stencil(ndim=2, reach=0, full=True)


class TestGraphDistance:
    def test_full_is_chebyshev(self):
        s = full_stencil(2)
        assert s.graph_distance((0, 0), (3, 1)) == 3

    def test_star_is_manhattan(self):
        s = star_stencil(2)
        assert s.graph_distance((0, 0), (3, 1)) == 4


class TestUnsyncBounds:
    """Eqs. 22-23: the largest step spread between two processes."""

    def test_paper_eq22_full(self):
        # full stencil, (J x K): max(J, K) - 1
        assert max_unsync_steps((6, 4), full_stencil(2)) == 5

    def test_paper_eq23_star(self):
        # star stencil, (J x K): (J - 1) + (K - 1)
        assert max_unsync_steps((6, 4), star_stencil(2)) == 8

    def test_single_block_has_no_spread(self):
        assert max_unsync_steps((1, 1), star_stencil(2)) == 0

    @given(
        st.tuples(st.integers(1, 12), st.integers(1, 12)),
        st.booleans(),
    )
    def test_bound_is_graph_diameter(self, blocks, full):
        """The closed forms equal the diameter of the block dependency
        graph — the spread is attained between the two most distant
        subregions."""
        stencil = (full_stencil if full else star_stencil)(2)
        corners = [
            (0, 0),
            (blocks[0] - 1, 0),
            (0, blocks[1] - 1),
            (blocks[0] - 1, blocks[1] - 1),
        ]
        diameter = max(
            stencil.graph_distance(a, b) for a in corners for b in corners
        )
        assert max_unsync_steps(blocks, stencil) == diameter

    @given(
        st.tuples(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
    )
    def test_3d_star_bound(self, blocks):
        expected = sum(b - 1 for b in blocks)
        assert max_unsync_steps(blocks, star_stencil(3)) == expected

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            max_unsync_steps((2, 2, 2), star_stencil(2))

    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            max_unsync_steps((0, 2), star_stencil(2))
