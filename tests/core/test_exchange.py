"""Ghost exchange: plans, the in-process exchanger, and its equivalence
with np.pad-based global ghost filling."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Decomposition, LocalExchanger, build_plan, make_subregions


def _field(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(shape)


class TestBuildPlan:
    def test_interior_block_has_four_recv_ops_2d(self):
        d = Decomposition((30, 30), (3, 3))
        plan = build_plan(d, 4, pad=2)  # center block
        assert len(plan.recv_ops()) == 4
        assert plan.n_neighbors == 4

    def test_corner_block_mixes_recv_and_replicate(self):
        d = Decomposition((30, 30), (3, 3))
        plan = build_plan(d, 0, pad=2)
        kinds = sorted(op.kind for op in plan.ops)
        assert kinds.count("recv") == 2
        assert kinds.count("replicate") == 2

    def test_hold_towards_inactive_block(self):
        solid = np.zeros((24, 24), dtype=bool)
        solid[:12, :12] = True
        d = Decomposition((24, 24), (2, 2), solid=solid)
        # rank 0 is block (0,1): its -y face points at the solid block
        blk = d.by_rank(0)
        assert blk.index == (0, 1)
        plan = build_plan(d, 0, pad=2)
        kinds = {(op.axis, op.side): op.kind for op in plan.ops}
        assert kinds[(1, -1)] == "hold"

    def test_block_smaller_than_pad_rejected(self):
        d = Decomposition((8, 8), (4, 1))
        with pytest.raises(ValueError):
            build_plan(d, 1, pad=3)

    def test_strip_nodes(self):
        d = Decomposition((20, 12), (2, 1))
        plan = build_plan(d, 0, pad=2)
        op = plan.recv_ops()[0]
        # strip: 2 wide along x, full padded extent (12 + 4) along y
        assert op.strip_nodes((14, 16)) == 2 * 16


def _reference_ghosts(a, pad, periodic):
    out = a
    for axis, per in enumerate(periodic):
        width = [(0, 0)] * a.ndim
        width[axis] = (pad, pad)
        out = np.pad(out, width, mode="wrap" if per else "edge")
    return out


class TestLocalExchanger:
    @given(
        st.sampled_from([(1, 1), (2, 1), (1, 2), (2, 2), (3, 2), (2, 3)]),
        st.sampled_from(
            [(False, False), (True, False), (False, True), (True, True)]
        ),
        st.integers(1, 3),
        st.integers(0, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_exchange_matches_global_padding(
        self, blocks, periodic, pad, seed
    ):
        """After scrambling ghosts and exchanging, every subregion's
        padded array equals the slice of the globally padded array —
        including corners (two-phase axis propagation) and domain edges."""
        shape = (17, 13)
        d = Decomposition(shape, blocks, periodic=periodic)
        if any(blk.shape[i] < pad for blk in d for i in range(2)):
            return
        a = _field(shape, seed)
        subs = make_subregions(d, pad, {"a": a})
        for sub in subs:  # scramble every ghost value
            mask = np.ones(sub.padded_shape, dtype=bool)
            mask[sub.interior] = False
            sub.fields["a"][mask] = -999.0
        ex = LocalExchanger(d, subs)
        ex.exchange(["a"])
        ref = _reference_ghosts(a, pad, periodic)
        for sub in subs:
            sl = tuple(
                slice(l, h + 2 * pad)
                for l, h in zip(sub.block.lo, sub.block.hi)
            )
            np.testing.assert_array_equal(sub.fields["a"], ref[sl])

    def test_component_field_exchange(self):
        shape = (16, 12)
        d = Decomposition(shape, (2, 2))
        a = _field((4,) + shape)
        subs = make_subregions(d, 2, {"a": a})
        for sub in subs:
            sub.fields["a"][:, 0, :] = -1.0
        LocalExchanger(d, subs).exchange(["a"])
        # reference: pad the *spatial* axes only
        ref = np.pad(a, ((0, 0), (2, 2), (2, 2)), mode="edge")
        for sub in subs:
            sl = tuple(
                slice(l, h + 4) for l, h in zip(sub.block.lo, sub.block.hi)
            )
            np.testing.assert_array_equal(
                sub.fields["a"], ref[(slice(None),) + sl]
            )

    def test_hold_faces_left_untouched(self):
        shape = (16, 16)
        solid = np.zeros(shape, dtype=bool)
        solid[:8, :8] = True
        d = Decomposition(shape, (2, 2), solid=solid)
        a = _field(shape)
        subs = make_subregions(d, 2, {"a": a}, solid)
        sub = next(s for s in subs if s.block.index == (0, 1))
        before = sub.fields["a"].copy()
        LocalExchanger(d, subs).exchange(["a"])
        # ghosts toward the inactive block (low-y side) keep initial data
        np.testing.assert_array_equal(
            sub.fields["a"][:, :2], before[:, :2]
        )

    def test_mixed_pads_rejected(self):
        d = Decomposition((16, 16), (2, 1))
        a = _field((16, 16))
        subs = make_subregions(d, 2, {"a": a})
        subs[1] = make_subregions(d, 3, {"a": a})[1]
        with pytest.raises(ValueError):
            LocalExchanger(d, subs)

    def test_message_bytes_match_payload_counts(self):
        """3 values/node in 2D: a 2-block split of a 12-wide face moves
        12 * pad * values * 8 bytes per message (paper §6 accounting,
        modulo the strip width)."""
        d = Decomposition((20, 12), (2, 1))
        subs = make_subregions(d, 2, {"a": _field((20, 12))})
        ex = LocalExchanger(d, subs)
        per_nbr = ex.message_bytes(0, values_per_node=3)
        assert per_nbr == {1: 2 * (12 + 4) * 3 * 8}

    def test_3d_exchange_matches_reference(self):
        shape = (12, 10, 8)
        d = Decomposition(shape, (2, 1, 2))
        rng = np.random.default_rng(3)
        a = rng.random(shape)
        subs = make_subregions(d, 2, {"a": a})
        for sub in subs:
            mask = np.ones(sub.padded_shape, dtype=bool)
            mask[sub.interior] = False
            sub.fields["a"][mask] = -5.0
        LocalExchanger(d, subs).exchange(["a"])
        ref = _reference_ghosts(a, 2, (False, False, False))
        for sub in subs:
            sl = tuple(
                slice(l, h + 4) for l, h in zip(sub.block.lo, sub.block.hi)
            )
            np.testing.assert_array_equal(sub.fields["a"], ref[sl])


class TestPlanProperties:
    """Structural invariants of exchange plans over random decompositions."""

    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.sampled_from(
            [(False, False), (True, False), (False, True), (True, True)]
        ),
        st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_recv_ops_pair_up(self, jx, jy, periodic, pad):
        """Every recv op has a matching op on the neighbour: same axis,
        opposite side, pointing back — the wiring the transports rely
        on to route strips."""
        shape = (24, 24)
        d = Decomposition(shape, (jx, jy), periodic=periodic)
        if any(blk.shape[i] < pad for blk in d for i in range(2)):
            return
        plans = {
            blk.rank: build_plan(d, blk.rank, pad)
            for blk in d.active_blocks()
        }
        for rank, plan in plans.items():
            for op in plan.recv_ops():
                partner = plans[op.neighbor_rank]
                matches = [
                    o for o in partner.ops_for_axis(op.axis)
                    if o.kind == "recv"
                    and o.side == -op.side
                    and o.neighbor_rank == rank
                ]
                assert len(matches) == 1

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=30, deadline=None)
    def test_every_face_has_exactly_one_op(self, jx, jy, pad):
        shape = (24, 24)
        d = Decomposition(shape, (jx, jy))
        if any(blk.shape[i] < pad for blk in d for i in range(2)):
            return
        for blk in d.active_blocks():
            plan = build_plan(d, blk.rank, pad)
            faces = {(op.axis, op.side) for op in plan.ops}
            assert faces == {(a, s) for a in range(2) for s in (-1, 1)}

    @given(st.integers(2, 4), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_send_and_recv_strips_same_size(self, j, pad):
        """A sent strip must exactly fill the neighbour's ghost strip."""
        shape = (24, 18)
        d = Decomposition(shape, (j, 2))
        if any(blk.shape[i] < pad for blk in d for i in range(2)):
            return
        plans = {
            blk.rank: build_plan(d, blk.rank, pad)
            for blk in d.active_blocks()
        }
        for rank, plan in plans.items():
            blk = d.by_rank(rank)
            padded = tuple(n + 2 * pad for n in blk.shape)
            for op in plan.recv_ops():
                partner_blk = d.by_rank(op.neighbor_rank)
                partner_padded = tuple(
                    n + 2 * pad for n in partner_blk.shape
                )
                partner_plan = plans[op.neighbor_rank]
                src_op = next(
                    o for o in partner_plan.ops_for_axis(op.axis)
                    if o.side == -op.side and o.kind == "recv"
                    and o.neighbor_rank == rank
                )
                recv_shape = tuple(
                    sl.indices(padded[i])[1] - sl.indices(padded[i])[0]
                    for i, sl in enumerate(op.recv_slices)
                )
                send_shape = tuple(
                    sl.indices(partner_padded[i])[1]
                    - sl.indices(partner_padded[i])[0]
                    for i, sl in enumerate(src_op.send_slices)
                )
                assert recv_shape == send_shape


class TestAxisSubsets:
    """exchange(axes=) and the thread-local replicate/hold path."""

    def test_exchange_axes_subset_only_touches_those_axes(self):
        shape = (16, 12)
        d = Decomposition(shape, (2, 2))
        a = _field(shape)
        subs = make_subregions(d, 2, {"a": a})
        for sub in subs:
            mask = np.ones(sub.padded_shape, dtype=bool)
            mask[sub.interior] = False
            sub.fields["a"][mask] = -999.0
        LocalExchanger(d, subs).exchange(["a"], axes=(0,))
        for sub in subs:
            # axis-0 ghosts filled, axis-1 ghosts still scrambled
            assert not (sub.fields["a"][:2, 2:-2] == -999.0).any()
            assert (sub.fields["a"][2:-2, :2] == -999.0).all()

    def test_exchange_local_fills_replicate_ghosts(self):
        shape = (16, 12)
        d = Decomposition(shape, (1, 2), periodic=(False, False))
        a = _field(shape)
        subs = make_subregions(d, 2, {"a": a})
        ex = LocalExchanger(d, subs)
        for rank, sub in enumerate(subs):
            mask = np.ones(sub.padded_shape, dtype=bool)
            mask[sub.interior] = False
            sub.fields["a"][mask] = -999.0
            ex.exchange_local(rank, (0,), ["a"])
            # axis 0 is single-block non-periodic: pure edge replication
            assert not (sub.fields["a"][:2, 2:-2] == -999.0).any()
            assert not (sub.fields["a"][-2:, 2:-2] == -999.0).any()

    def test_exchange_local_refuses_recv_axes(self):
        shape = (16, 12)
        d = Decomposition(shape, (2, 1), periodic=(False, False))
        subs = make_subregions(d, 2, {"a": _field(shape)})
        ex = LocalExchanger(d, subs)
        with pytest.raises(ValueError):
            ex.exchange_local(0, (0,), ["a"])  # axis 0 has neighbours
