"""The threaded in-process runner: concurrency without divergence."""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation, ThreadedSimulation
from repro.fluids import FDMethod, FluidParams, LBMethod, channel_geometry
from tests.conftest import perturbed_fields, rest_fields


def _pair(method_cls, shape=(32, 24), blocks=(2, 2), steps=25):
    solid = channel_geometry(shape)
    params = FluidParams.lattice(
        2, nu=0.08, gravity=(1e-5, 0.0), filter_eps=0.02
    )
    fields = perturbed_fields(shape, seed=21)
    fields["u"][solid] = 0.0
    fields["v"][solid] = 0.0
    periodic = (True, False)
    seq = Simulation(
        method_cls(params, 2),
        Decomposition(shape, blocks, periodic=periodic, solid=solid),
        fields, solid,
    )
    thr = ThreadedSimulation(
        method_cls(params, 2),
        Decomposition(shape, blocks, periodic=periodic, solid=solid),
        fields, solid,
    )
    seq.step(steps)
    thr.step(steps)
    return seq, thr


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
def test_threads_match_sequential_bitwise(method_cls):
    seq, thr = _pair(method_cls)
    for name in seq.method.field_names:
        assert np.array_equal(
            seq.global_field(name), thr.global_field(name)
        ), name


def test_many_threads(  ):
    seq, thr = _pair(LBMethod, shape=(48, 32), blocks=(4, 2), steps=15)
    for name in ("rho", "u", "v", "f"):
        assert np.array_equal(
            seq.global_field(name), thr.global_field(name)
        ), name


def test_step_counts_advance_together():
    _, thr = _pair(LBMethod, steps=7)
    assert thr.step_count == 7
    assert all(s.step == 7 for s in thr.subs)


def test_repeated_step_calls():
    solid = channel_geometry((32, 24))
    params = FluidParams.lattice(2, nu=0.08, gravity=(1e-5, 0.0))
    fields = rest_fields((32, 24))
    thr = ThreadedSimulation(
        LBMethod(params, 2),
        Decomposition((32, 24), (2, 2), periodic=(True, False),
                      solid=solid),
        fields, solid,
    )
    seq = Simulation(
        LBMethod(params, 2),
        Decomposition((32, 24), (2, 2), periodic=(True, False),
                      solid=solid),
        fields, solid,
    )
    for _ in range(3):
        thr.step(5)
        seq.step(5)
    assert np.array_equal(thr.global_field("u"), seq.global_field("u"))


def test_single_subregion_fast_path():
    params = FluidParams.lattice(2, nu=0.08)
    fields = rest_fields((24, 16))
    thr = ThreadedSimulation(
        LBMethod(params, 2),
        Decomposition((24, 16), (1, 1), periodic=(True, True)),
        fields,
    )
    thr.step(5)
    assert thr.step_count == 5


def test_kernel_error_propagates():
    """A worker-thread exception surfaces in step(), not a deadlock."""

    class ExplodingMethod(LBMethod):
        def finalize_step(self, sub):
            if sub.step == 2 and sub.block.rank == 1:
                raise RuntimeError("boom at step 2")
            super().finalize_step(sub)

    params = FluidParams.lattice(2, nu=0.08)
    thr = ThreadedSimulation(
        ExplodingMethod(params, 2),
        Decomposition((24, 16), (2, 1), periodic=(True, True)),
        rest_fields((24, 16)),
    )
    with pytest.raises(RuntimeError, match="boom"):
        thr.step(10)


def test_global_state_names():
    _, thr = _pair(LBMethod, steps=2)
    assert set(thr.global_state()) == {"rho", "u", "v", "f"}


class TestPersistentPool:
    """The pool survives across step() calls instead of respawning."""

    def _sim(self, blocks=(2, 1), shape=(24, 16), periodic=(True, True)):
        params = FluidParams.lattice(2, nu=0.08, gravity=(1e-5, 0.0))
        return ThreadedSimulation(
            LBMethod(params, 2),
            Decomposition(shape, blocks, periodic=periodic),
            rest_fields(shape),
        )

    def test_threads_are_reused_across_calls(self):
        thr = self._sim()
        thr.step(2)
        first = [t.ident for t in thr._pool]
        thr.step(2)
        assert [t.ident for t in thr._pool] == first
        thr.close()

    def test_close_is_idempotent_and_respawns(self):
        thr = self._sim()
        thr.step(2)
        thr.close()
        thr.close()
        assert thr._pool == []
        thr.step(3)  # a fresh pool spawns on demand
        assert thr.step_count == 5
        thr.close()

    def test_context_manager_closes(self):
        with self._sim() as thr:
            thr.step(2)
            assert thr._pool
        assert thr._pool == []

    def test_pool_recovers_after_worker_error(self):
        """One exploding step must not poison the pool for the next."""

        class Exploding(LBMethod):
            def finalize_step(self, sub):
                if sub.step == 1 and getattr(self, "armed", False):
                    raise RuntimeError("kaboom")
                super().finalize_step(sub)

        params = FluidParams.lattice(2, nu=0.08)
        method = Exploding(params, 2)
        method.armed = True
        thr = ThreadedSimulation(
            method,
            Decomposition((24, 16), (2, 1), periodic=(True, True)),
            rest_fields((24, 16)),
        )
        with pytest.raises(RuntimeError, match="kaboom"):
            thr.step(5)
        method.armed = False
        thr.step(3)  # the healed pool keeps working
        assert all(np.isfinite(thr.global_field("rho")).all()
                   for _ in [0])
        thr.close()

    def test_closed_threads_are_daemons(self):
        thr = self._sim()
        thr.step(1)
        assert all(t.daemon for t in thr._pool)
        thr.close()


class TestLocalAxes:
    """Axes without cross-block traffic skip the central exchange."""

    def _pair(self, blocks, periodic, steps=12):
        shape = (24, 20)
        params = FluidParams.lattice(
            2, nu=0.08, gravity=(1e-5, 0.0), filter_eps=0.02
        )
        fields = perturbed_fields(shape, seed=5)
        seq = Simulation(
            LBMethod(params, 2),
            Decomposition(shape, blocks, periodic=periodic),
            fields,
        )
        thr = ThreadedSimulation(
            LBMethod(params, 2),
            Decomposition(shape, blocks, periodic=periodic),
            fields,
        )
        seq.step(steps)
        thr.step(steps)
        thr.close()
        return seq, thr

    def test_single_block_leading_axis_is_local(self):
        """blocks (1, 2), walls on axis 0: its edge ops are pure
        replicate/hold, so the sweep prefix runs thread-locally."""
        seq, thr = self._pair((1, 2), (False, False))
        assert 0 in thr._local_axes
        for name in seq.method.field_names:
            assert np.array_equal(
                seq.global_field(name), thr.global_field(name)
            ), name

    def test_periodic_single_block_axis_stays_central(self):
        """A periodic wrap is a recv (self-roll) — never local."""
        seq, thr = self._pair((1, 2), (True, False))
        assert 0 not in thr._local_axes
        for name in seq.method.field_names:
            assert np.array_equal(
                seq.global_field(name), thr.global_field(name)
            ), name

    def test_all_axes_central_when_fully_split(self):
        seq, thr = self._pair((2, 2), (True, False))
        assert thr._local_axes == ()
        for name in seq.method.field_names:
            assert np.array_equal(
                seq.global_field(name), thr.global_field(name)
            ), name
