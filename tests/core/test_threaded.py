"""The threaded in-process runner: concurrency without divergence."""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation, ThreadedSimulation
from repro.fluids import FDMethod, FluidParams, LBMethod, channel_geometry
from tests.conftest import perturbed_fields, rest_fields


def _pair(method_cls, shape=(32, 24), blocks=(2, 2), steps=25):
    solid = channel_geometry(shape)
    params = FluidParams.lattice(
        2, nu=0.08, gravity=(1e-5, 0.0), filter_eps=0.02
    )
    fields = perturbed_fields(shape, seed=21)
    fields["u"][solid] = 0.0
    fields["v"][solid] = 0.0
    periodic = (True, False)
    seq = Simulation(
        method_cls(params, 2),
        Decomposition(shape, blocks, periodic=periodic, solid=solid),
        fields, solid,
    )
    thr = ThreadedSimulation(
        method_cls(params, 2),
        Decomposition(shape, blocks, periodic=periodic, solid=solid),
        fields, solid,
    )
    seq.step(steps)
    thr.step(steps)
    return seq, thr


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
def test_threads_match_sequential_bitwise(method_cls):
    seq, thr = _pair(method_cls)
    for name in seq.method.field_names:
        assert np.array_equal(
            seq.global_field(name), thr.global_field(name)
        ), name


def test_many_threads(  ):
    seq, thr = _pair(LBMethod, shape=(48, 32), blocks=(4, 2), steps=15)
    for name in ("rho", "u", "v", "f"):
        assert np.array_equal(
            seq.global_field(name), thr.global_field(name)
        ), name


def test_step_counts_advance_together():
    _, thr = _pair(LBMethod, steps=7)
    assert thr.step_count == 7
    assert all(s.step == 7 for s in thr.subs)


def test_repeated_step_calls():
    solid = channel_geometry((32, 24))
    params = FluidParams.lattice(2, nu=0.08, gravity=(1e-5, 0.0))
    fields = rest_fields((32, 24))
    thr = ThreadedSimulation(
        LBMethod(params, 2),
        Decomposition((32, 24), (2, 2), periodic=(True, False),
                      solid=solid),
        fields, solid,
    )
    seq = Simulation(
        LBMethod(params, 2),
        Decomposition((32, 24), (2, 2), periodic=(True, False),
                      solid=solid),
        fields, solid,
    )
    for _ in range(3):
        thr.step(5)
        seq.step(5)
    assert np.array_equal(thr.global_field("u"), seq.global_field("u"))


def test_single_subregion_fast_path():
    params = FluidParams.lattice(2, nu=0.08)
    fields = rest_fields((24, 16))
    thr = ThreadedSimulation(
        LBMethod(params, 2),
        Decomposition((24, 16), (1, 1), periodic=(True, True)),
        fields,
    )
    thr.step(5)
    assert thr.step_count == 5


def test_kernel_error_propagates():
    """A worker-thread exception surfaces in step(), not a deadlock."""

    class ExplodingMethod(LBMethod):
        def finalize_step(self, sub):
            if sub.step == 2 and sub.block.rank == 1:
                raise RuntimeError("boom at step 2")
            super().finalize_step(sub)

    params = FluidParams.lattice(2, nu=0.08)
    thr = ThreadedSimulation(
        ExplodingMethod(params, 2),
        Decomposition((24, 16), (2, 1), periodic=(True, True)),
        rest_fields((24, 16)),
    )
    with pytest.raises(RuntimeError, match="boom"):
        thr.step(10)


def test_global_state_names():
    _, thr = _pair(LBMethod, steps=2)
    assert set(thr.global_state()) == {"rho", "u", "v", "f"}
