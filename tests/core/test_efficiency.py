"""The §8 efficiency model: formulas, limits, and invariants."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    EfficiencyModel,
    efficiency_eq17,
    efficiency_eq18,
    efficiency_eq20,
    efficiency_eq21,
    surface_nodes,
    t_calc,
    t_com_point_to_point,
    t_com_shared_bus,
    utilization,
)


class TestBuildingBlocks:
    def test_surface_2d(self):
        # eq. 15: N_c = m sqrt(N)
        assert surface_nodes(10000, 4, 2) == pytest.approx(400)

    def test_surface_3d(self):
        # eq. 16: N_c = m N^(2/3)
        assert surface_nodes(27000, 2, 3) == pytest.approx(1800)

    def test_surface_bad_ndim(self):
        with pytest.raises(ValueError):
            surface_nodes(100, 2, 4)

    def test_t_calc(self):
        # eq. 13
        assert t_calc(39132, 39132.0) == pytest.approx(1.0)

    def test_t_com_point_to_point(self):
        # eq. 14
        assert t_com_point_to_point(10000, 2, 2, 100.0) == pytest.approx(2.0)

    def test_t_com_shared_bus_scales_with_p(self):
        # eq. 19
        t2 = t_com_shared_bus(10000, 2, 2, 100.0, p=2)
        t5 = t_com_shared_bus(10000, 2, 2, 100.0, p=5)
        assert t5 == pytest.approx(4 * t2)

    def test_utilization_equals_efficiency_formula(self):
        # eqs. 8 and 12: f = g = (1 + T_com/T_calc)^-1
        assert utilization(1.0, 0.25) == pytest.approx(0.8)


class TestClosedForms:
    def test_eq17_known_value(self):
        # f = (1 + N^-1/2 m U/U')^-1
        f = efficiency_eq17(10000.0, 4.0, 2.0 / 3.0)
        assert f == pytest.approx(1.0 / (1.0 + 4.0 * (2.0 / 3.0) / 100.0))

    def test_eq20_reduces_to_eq17_at_p2(self):
        f20 = efficiency_eq20(14400.0, 2.0, 0.5, p=2)
        f17 = efficiency_eq17(14400.0, 2.0, 0.5)
        assert f20 == pytest.approx(float(f17))

    def test_eq21_five_sixths_factor(self):
        """3D computes half as fast and moves 5/3 the data: prefactor
        5/6 on the 2D constants."""
        n, m, p = 25.0**3, 2.0, 10
        f = efficiency_eq21(n, m, 2.0 / 3.0, p)
        expected = 1.0 / (
            1.0 + (5 / 6) * n ** (-1 / 3) * (p - 1) * m * (2 / 3)
        )
        assert f == pytest.approx(expected)

    @given(st.floats(1e2, 1e8), st.floats(0.5, 8.0), st.floats(0.05, 5.0))
    def test_eq17_in_unit_interval(self, n, m, ratio):
        f = float(efficiency_eq17(n, m, ratio))
        assert 0.0 < f < 1.0

    @given(
        st.floats(1e2, 1e8),
        st.floats(0.5, 8.0),
        st.floats(0.05, 5.0),
        st.integers(2, 64),
    )
    def test_eq20_monotone_in_grain(self, n, m, ratio, p):
        f1 = float(efficiency_eq20(n, m, ratio, p))
        f2 = float(efficiency_eq20(4 * n, m, ratio, p))
        assert f2 > f1

    @given(st.floats(1e3, 1e7), st.floats(0.5, 6.0), st.integers(2, 30))
    def test_eq20_decreases_with_p(self, n, m, p):
        f_lo = float(efficiency_eq20(n, m, 2 / 3, p))
        f_hi = float(efficiency_eq20(n, m, 2 / 3, p + 5))
        assert f_hi < f_lo

    def test_3d_needs_larger_grain_than_2d(self):
        """N^-1/3 vs N^-1/2: at equal node count and geometry, 3D
        efficiency is lower — why high 3D efficiency is so hard (§8)."""
        n = 14000.0
        f2 = float(efficiency_eq20(n, 2, 2 / 3, 10))
        f3 = float(efficiency_eq21(n, 2, 2 / 3, 10))
        assert f3 < f2


class TestEfficiencyModel:
    def test_paper_default_ratio(self):
        assert EfficiencyModel().ratio == pytest.approx(2 / 3)

    def test_speedup_is_fp(self):
        m = EfficiencyModel()
        f = float(m.efficiency(125.0**2, 2, 10, 2))
        assert float(m.speedup(125.0**2, 2, 10, 2)) == pytest.approx(10 * f)

    def test_point_to_point_variant(self):
        m = EfficiencyModel(shared_bus=False)
        f = float(m.efficiency(10000.0, 4, 20, 2))
        assert f == pytest.approx(float(efficiency_eq17(10000.0, 4, 2 / 3)))

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            EfficiencyModel().efficiency(100.0, 2, 4, ndim=4)

    @given(
        st.floats(0.2, 0.95),
        st.sampled_from([2.0, 3.0, 4.0]),
        st.integers(2, 20),
        st.sampled_from([2, 3]),
    )
    def test_grain_inversion(self, target, m, p, ndim):
        """grain_for_efficiency inverts the closed forms."""
        model = EfficiencyModel()
        n = model.grain_for_efficiency(target, m, p, ndim)
        assert float(model.efficiency(n, m, p, ndim)) == pytest.approx(
            target, rel=1e-6
        )

    def test_grain_bounds(self):
        with pytest.raises(ValueError):
            EfficiencyModel().grain_for_efficiency(1.5, 2, 4)

    def test_paper_2d_high_efficiency_grain(self):
        """§8: in 2D, high efficiency needs subregions larger than
        ~100^2 on the paper's cluster — and the 300^2 memory ceiling is
        comfortably above that."""
        model = EfficiencyModel()
        n80 = model.grain_for_efficiency(0.80, m=4, p=20, ndim=2)
        assert 50**2 < n80 < 300**2

    def test_paper_3d_memory_wall(self):
        """§8: in 3D, the ~40^3 per-workstation memory ceiling sits
        *below* the grain needed for high efficiency — why 3D needs a
        faster network."""
        model = EfficiencyModel()
        n80 = model.grain_for_efficiency(0.80, m=2, p=20, ndim=3)
        assert n80 > 40**3


class TestOverheadModel:
    """The small-message extension §8 invites."""

    def _models(self):
        from repro.core import OverheadEfficiencyModel

        base = EfficiencyModel()
        ext = OverheadEfficiencyModel(t_msg=1.0e-3, messages=1)
        return base, ext

    def test_reduces_to_eq20_without_overhead(self):
        from repro.core import OverheadEfficiencyModel

        ext = OverheadEfficiencyModel(t_msg=0.0)
        base = EfficiencyModel()
        for n in (50.0**2, 200.0**2):
            assert float(ext.efficiency(n, 4, 20, 2)) == pytest.approx(
                float(base.efficiency(n, 4, 20, 2))
            )

    def test_overhead_bites_small_grains_only(self):
        base, ext = self._models()
        small_gap = float(base.efficiency(25.0**2, 4, 20, 2)) - float(
            ext.efficiency(25.0**2, 4, 20, 2)
        )
        large_gap = float(base.efficiency(300.0**2, 4, 20, 2)) - float(
            ext.efficiency(300.0**2, 4, 20, 2)
        )
        assert small_gap > 0.05
        assert large_gap < 0.02

    def test_fd_double_messages_hurt_more(self):
        from repro.core import OverheadEfficiencyModel

        lb = OverheadEfficiencyModel(messages=1)
        fd = OverheadEfficiencyModel(messages=2)
        n = 30.0**2
        assert float(fd.efficiency(n, 4, 20, 2)) < float(
            lb.efficiency(n, 4, 20, 2)
        )

    def test_tracks_simulated_small_grain_better_than_eq20(self):
        """The point of the extension: the simulated (measured) rolloff
        below 100^2 that eq. 20 over-predicts."""
        from repro.cluster import ClusterSimulation
        from repro.core import OverheadEfficiencyModel

        base = EfficiencyModel()
        ext = OverheadEfficiencyModel(t_msg=1.2e-3, messages=1)
        for side in (25, 50):
            sim = ClusterSimulation("lb", 2, (5, 4), side).run(20)
            f_sim = sim.efficiency
            err_base = abs(float(base.efficiency(side**2, 4, 20, 2)) - f_sim)
            err_ext = abs(float(ext.efficiency(side**2, 4, 20, 2)) - f_sim)
            assert err_ext < err_base, side

    def test_3d_variant(self):
        from repro.core import OverheadEfficiencyModel

        ext = OverheadEfficiencyModel()
        f = float(ext.efficiency(25.0**3, 2, 20, 3))
        assert 0.0 < f < float(ext.efficiency(40.0**3, 2, 20, 3))

    def test_bad_ndim(self):
        from repro.core import OverheadEfficiencyModel

        with pytest.raises(ValueError):
            OverheadEfficiencyModel().efficiency(100.0, 2, 4, ndim=1)
