"""Decomposition geometry: block ranges, neighbours, inactive blocks, m."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import Decomposition, full_stencil, paper_m_table, star_stencil


class TestSplitting:
    @given(
        st.integers(8, 200),
        st.integers(8, 200),
        st.integers(1, 6),
        st.integers(1, 6),
    )
    def test_blocks_partition_grid(self, nx, ny, jx, jy):
        """Blocks tile the grid exactly: disjoint and covering."""
        if nx < jx or ny < jy:
            return
        d = Decomposition((nx, ny), (jx, jy))
        cover = np.zeros((nx, ny), dtype=int)
        for blk in d:
            cover[blk.slices] += 1
        assert (cover == 1).all()

    @given(st.integers(10, 300), st.integers(1, 8))
    def test_split_is_balanced(self, n, parts):
        if n < parts:
            return
        d = Decomposition((n, 8), (parts, 1))
        sizes = {blk.shape[0] for blk in d}
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_blocks_rejected(self):
        with pytest.raises(ValueError):
            Decomposition((4, 4), (8, 1))

    def test_dimensionality_checks(self):
        with pytest.raises(ValueError):
            Decomposition((16, 16), (2, 2, 2))
        with pytest.raises(ValueError):
            Decomposition((16,), (2,))


class TestRanksAndActivity:
    def test_ranks_dense_and_ordered(self):
        d = Decomposition((20, 20), (2, 2))
        assert sorted(b.rank for b in d.active_blocks()) == [0, 1, 2, 3]
        assert d.n_active == 4

    def test_all_active_without_solid(self):
        d = Decomposition((24, 24), (3, 3))
        assert d.n_active == d.n_blocks == 9
        assert d.active_fraction == 1.0

    def test_inactive_solid_blocks_fig2(self):
        """Fig. 2: all-solid subregions are not assigned to workstations."""
        solid = np.zeros((24, 24), dtype=bool)
        solid[:12, :12] = True  # one quadrant entirely wall
        d = Decomposition((24, 24), (2, 2), solid=solid)
        assert d.n_active == 3
        inactive = [b for b in d if not b.active]
        assert len(inactive) == 1
        assert inactive[0].index == (0, 0)
        assert inactive[0].rank == -1
        assert d.active_fraction == pytest.approx(3 / 4)

    def test_partially_solid_block_stays_active(self):
        solid = np.zeros((24, 24), dtype=bool)
        solid[:11, :12] = True  # not the whole block
        d = Decomposition((24, 24), (2, 2), solid=solid)
        assert d.n_active == 4

    def test_n_active_nodes_excludes_inactive(self):
        solid = np.zeros((24, 24), dtype=bool)
        solid[:12, :12] = True
        d = Decomposition((24, 24), (2, 2), solid=solid)
        assert d.n_active_nodes == 24 * 24 - 12 * 12

    def test_by_rank_roundtrip(self):
        d = Decomposition((30, 20), (3, 2))
        for blk in d.active_blocks():
            assert d.by_rank(blk.rank) is blk

    def test_solid_shape_mismatch(self):
        with pytest.raises(ValueError):
            Decomposition((16, 16), (2, 2), solid=np.zeros((8, 8), bool))


class TestNeighbors:
    def test_interior_block_star_neighbors(self):
        d = Decomposition((30, 30), (3, 3))
        nbrs = d.neighbors((1, 1), star_stencil(2))
        assert len(nbrs) == 4

    def test_corner_block_neighbors(self):
        d = Decomposition((30, 30), (3, 3))
        nbrs = d.neighbors((0, 0), star_stencil(2))
        assert len(nbrs) == 2

    def test_full_stencil_includes_diagonals(self):
        d = Decomposition((30, 30), (3, 3))
        nbrs = d.neighbors((1, 1), full_stencil(2))
        assert len(nbrs) == 8

    def test_periodic_wraps(self):
        d = Decomposition((30, 30), (3, 3), periodic=(True, False))
        nbrs = d.neighbors((0, 1), star_stencil(2))
        assert len(nbrs) == 4
        assert nbrs[(-1, 0)].index == (2, 1)

    def test_periodic_single_block_self_neighbor(self):
        d = Decomposition((30, 8), (1, 1), periodic=(True, False))
        nbrs = d.neighbors((0, 0), star_stencil(2))
        assert nbrs[(1, 0)].index == (0, 0)
        assert (0, -1) not in nbrs  # non-periodic axis, domain boundary

    def test_inactive_neighbors_omitted(self):
        solid = np.zeros((24, 24), dtype=bool)
        solid[:12, :12] = True
        d = Decomposition((24, 24), (2, 2), solid=solid)
        nbrs = d.neighbors((1, 0), star_stencil(2))
        assert all(b.active for b in nbrs.values())
        assert (-1, 0) not in nbrs


class TestMFactor:
    def test_paper_table_values(self):
        """§8's table: P x 1 -> 2, 2x2 -> 2, 3x3 -> 3, 4x4 -> 4, 5x4 -> 4."""
        table = {
            (16, 1): 2,
            (2, 2): 2,
            (3, 3): 3,
            (4, 4): 4,
            (5, 4): 4,
        }
        for blocks, m in table.items():
            grid = tuple(24 * b for b in blocks)
            d = Decomposition(grid, blocks)
            assert d.m_factor("paper") == m, blocks

    def test_paper_table_function(self):
        assert paper_m_table()[(5, 4)] == 4

    def test_mean_mode_2x2(self):
        d = Decomposition((24, 24), (2, 2))
        assert d.m_factor("mean") == 2.0

    def test_max_mode_3x3(self):
        d = Decomposition((30, 30), (3, 3))
        assert d.m_factor("max") == 4.0

    def test_untabulated_falls_back_to_interior_faces(self):
        d = Decomposition((24, 24, 24), (2, 2, 2))
        assert d.m_factor("paper") == 3.0  # min(1,2)*3

    def test_unknown_mode(self):
        d = Decomposition((24, 24), (2, 2))
        with pytest.raises(ValueError):
            d.m_factor("median")


class TestWeighted:
    @given(
        st.integers(16, 120),
        st.integers(8, 40),
        st.lists(st.floats(0.1, 10.0), min_size=2, max_size=5),
    )
    def test_weighted_blocks_partition_grid(self, nx, ny, weights):
        """Weights skew slab sizes but never break the tiling."""
        if nx < len(weights):
            return
        d = Decomposition((nx, ny), (len(weights), 1),
                          weights=(weights, None))
        cover = np.zeros((nx, ny), dtype=int)
        for blk in d:
            cover[blk.slices] += 1
        assert (cover == 1).all()

    def test_integer_weights_reproduce_exact_extents(self):
        """Integer weights summing to the axis extent round-trip exactly
        — the invariant the rebalance runtime relies on for the monitor
        and worker decompositions to agree."""
        shares = (6, 15, 15, 12)
        d = Decomposition((48, 24), (4, 1), weights=(shares, None))
        rows = [b.hi[0] - b.lo[0]
                for b in sorted(d.active_blocks(), key=lambda b: b.rank)]
        assert tuple(rows) == shares

    def test_neighbors_consistent_with_uneven_extents(self):
        d = Decomposition((48, 24), (4, 1), periodic=(True, False),
                          weights=((4, 20, 12, 12), None))
        for blk in d.active_blocks():
            nbrs = d.neighbors(blk.index, star_stencil(2))
            assert len(nbrs) == 2  # periodic chain: up + down always
            for off, nbr in nbrs.items():
                # adjacency in index space matches adjacency in rows
                if off == (1, 0) and nbr.lo[0] != 0:
                    assert nbr.lo[0] == blk.hi[0]
                if off == (-1, 0) and blk.lo[0] != 0:
                    assert nbr.hi[0] == blk.lo[0]

    def test_boundary_nodes_uneven_chain(self):
        d = Decomposition((48, 10), (3, 1), weights=((8, 30, 10), None))
        # interior slab: two faces of 10 nodes regardless of thickness
        assert d.boundary_nodes((1, 0)) == 20
        assert d.boundary_nodes((0, 0)) == 10

    def test_n_active_nodes_invariant_across_recuts(self):
        base = Decomposition((48, 24), (4, 1))
        for w in ((12, 12, 12, 12), (6, 15, 15, 12), (1, 1, 1, 45)):
            d = Decomposition((48, 24), (4, 1), weights=(w, None))
            assert d.n_active_nodes == base.n_active_nodes

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ValueError):
            Decomposition((48, 24), (4, 1), weights=((1, 2, 3), None))
        with pytest.raises(ValueError):
            Decomposition((48, 24), (4, 1), weights=((1, 1, 1, 1),))

    def test_non_positive_weights_rejected(self):
        with pytest.raises(ValueError):
            Decomposition((48, 24), (4, 1), weights=((1, 0, 1, 1), None))
        with pytest.raises(ValueError):
            Decomposition((48, 24), (4, 1), weights=((1, -2, 1, 1), None))


class TestBoundaryNodes:
    def test_chain_interior_block(self):
        d = Decomposition((40, 10), (4, 1))
        # interior block: two communicating faces of 10 nodes each
        assert d.boundary_nodes((1, 0)) == 20

    def test_chain_end_block(self):
        d = Decomposition((40, 10), (4, 1))
        assert d.boundary_nodes((0, 0)) == 10

    def test_corner_block_shares_corner_node(self):
        d = Decomposition((20, 20), (2, 2))
        # two faces of 10, corner node counted once
        assert d.boundary_nodes((0, 0)) == 19

    def test_surface_scaling_against_model(self):
        """Exact N_c approaches m * sqrt(N) for interior square blocks."""
        d = Decomposition((300, 300), (3, 3))
        exact = d.boundary_nodes((1, 1))
        n = 100 * 100
        assert exact == pytest.approx(4 * np.sqrt(n), rel=0.05)
