"""Padded subregion states and global <-> local array plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Decomposition, assemble_global, make_subregions


def _field(shape, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(shape)


class TestMakeSubregions:
    def test_interiors_match_global(self):
        shape = (24, 18)
        d = Decomposition(shape, (3, 2))
        a = _field(shape)
        subs = make_subregions(d, 3, {"a": a})
        for sub in subs:
            np.testing.assert_array_equal(
                sub.interior_view("a"), a[sub.block.slices]
            )

    @given(
        st.integers(12, 40),
        st.integers(12, 40),
        st.sampled_from([(1, 1), (2, 1), (2, 2), (3, 2)]),
        st.sampled_from([(False, False), (True, False), (True, True)]),
        st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_ghosts_match_padded_global(self, nx, ny, blocks, periodic, pad):
        """Every ghost value equals the correspondingly padded global
        array — interior neighbours exact, domain edges replicated or
        wrapped."""
        shape = (nx, ny)
        d = Decomposition(shape, blocks, periodic=periodic)
        if any(
            blk.shape[i] < pad for blk in d for i in range(2)
        ):
            return
        a = _field(shape, seed=nx * ny)
        subs = make_subregions(d, pad, {"a": a})
        padded = a
        for axis, per in enumerate(periodic):
            width = [(0, 0), (0, 0)]
            width[axis] = (pad, pad)
            padded = np.pad(
                padded, width, mode="wrap" if per else "edge"
            )
        for sub in subs:
            sl = tuple(
                slice(l, h + 2 * pad)
                for l, h in zip(sub.block.lo, sub.block.hi)
            )
            np.testing.assert_array_equal(sub.fields["a"], padded[sl])

    def test_component_fields(self):
        shape = (16, 12)
        d = Decomposition(shape, (2, 2))
        a = _field((5,) + shape)
        subs = make_subregions(d, 2, {"a": a})
        sub = subs[0]
        assert sub.fields["a"].shape == (5, 8 + 4, 6 + 4)
        np.testing.assert_array_equal(
            sub.interior_view("a"), a[(...,) + sub.block.slices]
        )

    def test_field_shape_mismatch(self):
        d = Decomposition((16, 12), (2, 2))
        with pytest.raises(ValueError):
            make_subregions(d, 2, {"a": np.zeros((16, 10))})

    def test_solid_cut_and_padded(self):
        shape = (16, 12)
        solid = np.zeros(shape, dtype=bool)
        solid[:, 0] = True
        d = Decomposition(shape, (2, 2))
        subs = make_subregions(d, 2, {"a": _field(shape)}, solid)
        low = next(s for s in subs if s.block.index == (0, 0))
        # padded solid replicates the edge: ghost rows below y=0 solid
        assert low.solid[:, 0].all() and low.solid[:, 2].all()

    def test_inactive_blocks_get_no_subregion(self):
        shape = (16, 16)
        solid = np.zeros(shape, dtype=bool)
        solid[:8, :8] = True
        d = Decomposition(shape, (2, 2), solid=solid)
        subs = make_subregions(d, 2, {"a": _field(shape)}, solid)
        assert len(subs) == 3


class TestSubregionState:
    def _sub(self):
        d = Decomposition((16, 12), (2, 2))
        return make_subregions(d, 3, {"a": _field((16, 12))})[0]

    def test_interior_slices(self):
        sub = self._sub()
        assert sub.interior == (slice(3, 11), slice(3, 9))
        assert sub.padded_shape == (14, 12)

    def test_grown_interior(self):
        sub = self._sub()
        assert sub.grown_interior(1) == (slice(2, 12), slice(2, 10))
        assert sub.grown_interior(0) == sub.interior

    def test_grown_interior_limit(self):
        sub = self._sub()
        with pytest.raises(ValueError):
            sub.grown_interior(4)

    def test_add_field(self):
        sub = self._sub()
        arr = sub.add_field("b", fill=2.5)
        assert arr.shape == sub.padded_shape
        assert (arr == 2.5).all()
        with pytest.raises(ValueError):
            sub.add_field("b")

    def test_add_component_field(self):
        sub = self._sub()
        arr = sub.add_field("f", components=9)
        assert arr.shape == (9,) + sub.padded_shape


class TestAssembleGlobal:
    @given(st.sampled_from([(1, 1), (2, 2), (3, 1), (2, 3)]))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip(self, blocks):
        shape = (18, 18)
        d = Decomposition(shape, blocks)
        a = _field(shape, seed=7)
        subs = make_subregions(d, 2, {"a": a})
        np.testing.assert_array_equal(assemble_global(d, subs, "a"), a)

    def test_inactive_filled(self):
        shape = (16, 16)
        solid = np.zeros(shape, dtype=bool)
        solid[:8, :8] = True
        d = Decomposition(shape, (2, 2), solid=solid)
        a = _field(shape)
        subs = make_subregions(d, 2, {"a": a}, solid)
        out = assemble_global(d, subs, "a", fill=-1.0)
        assert (out[:8, :8] == -1.0).all()
        np.testing.assert_array_equal(out[8:, :], a[8:, :])

    def test_component_roundtrip(self):
        shape = (16, 16)
        d = Decomposition(shape, (2, 2))
        a = _field((3,) + shape)
        subs = make_subregions(d, 2, {"a": a})
        np.testing.assert_array_equal(assemble_global(d, subs, "a"), a)
