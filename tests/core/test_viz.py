"""Dependency-free visualization."""

import numpy as np
import pytest

from repro.viz import (
    ascii_contours,
    diverging_colormap,
    field_to_ppm,
    svg_plot,
)


class TestColormap:
    def test_endpoints(self):
        rgb = diverging_colormap(np.array([-1.0, 0.0, 1.0]))
        np.testing.assert_array_equal(rgb[0], [0, 0, 255])     # blue
        np.testing.assert_array_equal(rgb[1], [255, 255, 255])  # white
        np.testing.assert_array_equal(rgb[2], [255, 0, 0])     # red

    def test_clipping(self):
        rgb = diverging_colormap(np.array([-5.0, 5.0]))
        np.testing.assert_array_equal(rgb[0], [0, 0, 255])
        np.testing.assert_array_equal(rgb[1], [255, 0, 0])

    def test_shape_preserved(self):
        rgb = diverging_colormap(np.zeros((4, 6)))
        assert rgb.shape == (4, 6, 3)
        assert rgb.dtype == np.uint8


class TestPPM:
    def test_header_and_size(self, tmp_path):
        field = np.random.default_rng(0).standard_normal((20, 12))
        path = field_to_ppm(field, tmp_path / "f.ppm")
        data = path.read_bytes()
        # image width = nx = 20 columns, height = ny = 12 rows
        assert data.startswith(b"P6\n20 12\n255\n")
        header_len = len(b"P6\n20 12\n255\n")
        assert len(data) == header_len + 20 * 12 * 3

    def test_solid_painted_gray(self, tmp_path):
        field = np.ones((8, 8))
        solid = np.zeros((8, 8), dtype=bool)
        solid[0, 0] = True
        path = field_to_ppm(field, tmp_path / "f.ppm", solid=solid)
        data = path.read_bytes()
        pixels = np.frombuffer(
            data.split(b"255\n", 1)[1], dtype=np.uint8
        ).reshape(8, 8, 3)
        # array (0, 0) = bottom-left of the image = last row, first col
        np.testing.assert_array_equal(pixels[-1, 0], [96, 96, 96])

    def test_rejects_3d(self, tmp_path):
        with pytest.raises(ValueError):
            field_to_ppm(np.zeros((3, 3, 3)), tmp_path / "f.ppm")

    def test_mismatched_solid(self, tmp_path):
        with pytest.raises(ValueError):
            field_to_ppm(np.zeros((4, 4)), tmp_path / "f.ppm",
                         solid=np.zeros((5, 5), bool))

    def test_zero_field_is_white(self, tmp_path):
        path = field_to_ppm(np.zeros((4, 4)), tmp_path / "f.ppm")
        pixels = np.frombuffer(
            path.read_bytes().split(b"255\n", 1)[1], dtype=np.uint8
        )
        assert (pixels == 255).all()


class TestAscii:
    def test_signs_and_walls(self):
        field = np.zeros((40, 20))
        field[5:10, 10:15] = 1.0
        field[25:30, 5:10] = -1.0
        solid = np.zeros((40, 20), dtype=bool)
        solid[:, 0] = True
        text = ascii_contours(field, solid, width=40, height=20)
        assert "+" in text and "-" in text and "#" in text
        lines = text.splitlines()
        assert len(lines) == 20
        assert all(len(l) == 40 for l in lines)
        # walls are the bottom row (y upward)
        assert set(lines[-1]) == {"#"}

    def test_quiet_field_blank(self):
        text = ascii_contours(np.zeros((20, 10)), width=20, height=10)
        assert set(text) <= {" ", "\n"}


class TestSVG:
    def test_writes_valid_svg(self, tmp_path):
        path = svg_plot(
            {"2d": ([2, 4, 8], [0.98, 0.95, 0.88]),
             "3d": ([2, 4, 8], [0.95, 0.86, 0.71])},
            tmp_path / "fig9.svg",
            title="fig 9", xlabel="P", ylabel="efficiency",
        )
        text = path.read_text()
        assert text.startswith("<svg")
        assert text.rstrip().endswith("</svg>")
        assert text.count("<polyline") == 2
        assert "fig 9" in text and "efficiency" in text

    def test_marker_per_point(self, tmp_path):
        path = svg_plot({"s": ([1, 2, 3], [1, 2, 3])},
                        tmp_path / "p.svg")
        assert path.read_text().count("<circle") == 3

    def test_ylim(self, tmp_path):
        text = svg_plot(
            {"s": ([0, 1], [0.4, 0.6])}, tmp_path / "p.svg",
            ylim=(0.0, 1.0),
        ).read_text()
        assert "0.25" in text  # the fixed-scale tick labels

    def test_empty_series_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            svg_plot({}, tmp_path / "p.svg")

    def test_degenerate_extent_handled(self, tmp_path):
        path = svg_plot({"s": ([1, 1], [2, 2])}, tmp_path / "p.svg")
        assert "<polyline" in path.read_text()
