"""The Simulation facade and the compute/communicate cycle, exercised
with a minimal explicit method (diffusion) independent of the fluids
package."""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.core.subregion import SubregionState


class DiffusionMethod:
    """Tiny reference method: one Jacobi diffusion sweep per step.

    pad=1 and a single exchange phase — the simplest possible local
    interaction computation (the unsteady heat equation the PARFORM
    system of [1] solves).
    """

    pad = 1
    field_names = ("t",)
    exchange_phases = (("t",),)

    def __init__(self, alpha: float = 0.2):
        self.alpha = alpha

    def init_subregion(self, sub: SubregionState) -> None:
        sub.aux["scratch"] = np.zeros(sub.padded_shape)

    def compute_phase(self, sub: SubregionState, phase: int) -> None:
        # Update the interior in the compute phase (reading ghosts that
        # the *previous* step's exchange refreshed), then let the runner
        # exchange the updated field — the same structure as the FD and
        # LB methods.
        t = sub.fields["t"]
        r = sub.interior
        lap = (
            t[r[0].start - 1:r[0].stop - 1, r[1]]
            + t[r[0].start + 1:r[0].stop + 1, r[1]]
            + t[r[0], r[1].start - 1:r[1].stop - 1]
            + t[r[0], r[1].start + 1:r[1].stop + 1]
            - 4.0 * t[r]
        )
        sub.aux["scratch"][r] = t[r] + self.alpha * lap
        t[r] = sub.aux["scratch"][r]

    def finalize_step(self, sub: SubregionState) -> None:
        pass


def _initial(shape, seed=0):
    rng = np.random.default_rng(seed)
    return {"t": rng.random(shape)}


class TestSimulation:
    def test_step_count(self):
        d = Decomposition((16, 16), (2, 2))
        sim = Simulation(DiffusionMethod(), d, _initial((16, 16)))
        sim.step(5)
        assert sim.step_count == 5
        assert all(s.step == 5 for s in sim.subs)

    def test_serial_equals_decomposed_bitwise(self):
        shape = (20, 16)
        fields = _initial(shape, seed=4)
        serial = Simulation(
            DiffusionMethod(), Decomposition(shape, (1, 1)), fields
        )
        par = Simulation(
            DiffusionMethod(), Decomposition(shape, (4, 2)), fields
        )
        serial.step(25)
        par.step(25)
        np.testing.assert_array_equal(
            serial.global_field("t"), par.global_field("t")
        )

    def test_periodic_serial_equals_decomposed(self):
        shape = (20, 16)
        fields = _initial(shape, seed=5)
        kw = dict(periodic=(True, True))
        serial = Simulation(
            DiffusionMethod(), Decomposition(shape, (1, 1), **kw), fields
        )
        par = Simulation(
            DiffusionMethod(), Decomposition(shape, (2, 2), **kw), fields
        )
        serial.step(30)
        par.step(30)
        np.testing.assert_array_equal(
            serial.global_field("t"), par.global_field("t")
        )

    def test_diffusion_conserves_heat_periodic(self):
        shape = (16, 16)
        sim = Simulation(
            DiffusionMethod(),
            Decomposition(shape, (2, 2), periodic=(True, True)),
            _initial(shape, seed=1),
        )
        before = sim.global_field("t").sum()
        sim.step(50)
        assert sim.global_field("t").sum() == pytest.approx(before)

    def test_diffusion_decays_towards_mean(self):
        shape = (16, 16)
        sim = Simulation(
            DiffusionMethod(),
            Decomposition(shape, (2, 2), periodic=(True, True)),
            _initial(shape, seed=2),
        )
        var0 = sim.global_field("t").var()
        sim.step(100)
        assert sim.global_field("t").var() < 0.01 * var0

    def test_global_state_contains_all_fields(self):
        sim = Simulation(
            DiffusionMethod(), Decomposition((16, 16), (2, 2)),
            _initial((16, 16)),
        )
        assert set(sim.global_state()) == {"t"}

    def test_empty_decomposition_rejected(self):
        solid = np.ones((16, 16), dtype=bool)
        d = Decomposition((16, 16), (1, 1), solid=solid)
        with pytest.raises(ValueError):
            Simulation(DiffusionMethod(), d, _initial((16, 16)), solid)
