"""The rebalance planner's three gates and its plan economics."""

import pytest

from repro.balance import BalancePolicy, RebalancePlanner
from repro.cluster.allocation import repartition_cost


def _policy(**kw):
    defaults = dict(
        threshold=0.05, cooldown=0.0, min_gain=1.0,
        state_bytes_per_node=72.0, bandwidth=1.25e6,
    )
    defaults.update(kw)
    return BalancePolicy(**defaults)


class TestGates:
    def test_balanced_speeds_propose_nothing(self):
        planner = RebalancePlanner(_policy())
        plan = planner.propose([1.0, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=100)
        assert plan is None

    def test_skewed_speeds_propose_matching_shares(self):
        planner = RebalancePlanner(_policy())
        plan = planner.propose([0.5, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=1000)
        assert plan is not None
        assert sum(plan.shares) == 100
        assert plan.shares[0] == min(plan.shares)
        assert plan.current == (25, 25, 25, 25)

    def test_threshold_blocks_small_wiggles(self):
        planner = RebalancePlanner(_policy(threshold=0.2))
        plan = planner.propose([0.9, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=1000)
        assert plan is None

    def test_cooldown_blocks_until_elapsed(self):
        planner = RebalancePlanner(_policy(cooldown=10.0))
        speeds, current = [0.5, 1.0, 1.0, 1.0], [25, 25, 25, 25]
        first = planner.propose(speeds, current, 1000, now=0.0)
        assert first is not None
        planner.commit(0.0, first)
        assert planner.propose(speeds, list(first.shares), 1000,
                               now=5.0) is None
        # ... even for a fresh imbalance
        assert planner.propose([1.0, 0.5, 1.0, 1.0], list(first.shares),
                               1000, now=5.0) is None
        # after the cooldown the planner answers again
        assert planner.propose([1.0, 0.5, 1.0, 1.0], list(first.shares),
                               1000, now=20.0) is not None

    def test_amortization_blocks_short_runs(self):
        """A rebalance that cannot repay its cost is not proposed."""
        pol = _policy(min_gain=1.0, fixed_overhead=1000.0)
        planner = RebalancePlanner(pol)
        assert planner.propose([0.5, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=1) is None
        # the same imbalance over many steps amortizes
        assert planner.propose([0.5, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=10 ** 6) is not None

    def test_no_steps_remaining_never_proposes(self):
        planner = RebalancePlanner(_policy())
        assert planner.propose([0.1, 1.0], [50, 50], 0) is None
        assert planner.propose([0.1, 1.0], [50, 50], -5,
                               force=True) is None

    def test_force_skips_gates_but_not_identity(self):
        planner = RebalancePlanner(_policy(threshold=10.0,
                                           cooldown=1e9,
                                           min_gain=1e9))
        planner.commit(0.0)
        plan = planner.propose([0.5, 1.0], [50, 50], 10, now=1.0,
                               force=True)
        assert plan is not None
        # shares identical to current: nothing to do even when forced
        assert planner.propose([1.0, 1.0], [50, 50], 10, now=1.0,
                               force=True) is None

    def test_mismatched_lengths_rejected(self):
        planner = RebalancePlanner()
        with pytest.raises(ValueError):
            planner.propose([1.0, 1.0], [25, 25, 50], 10)


class TestPlanEconomics:
    def test_cost_matches_repartition_cost(self):
        pol = _policy()
        planner = RebalancePlanner(pol)
        plan = planner.propose([0.5, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=1000)
        expected = repartition_cost(
            list(plan.current), list(plan.shares),
            pol.state_bytes_per_node, pol.bandwidth,
            fixed_overhead=pol.fixed_overhead,
        )
        assert plan.cost == pytest.approx(expected)

    def test_projected_saving_is_step_delta_times_steps(self):
        planner = RebalancePlanner(_policy())
        plan = planner.propose([0.5, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=1000)
        delta = plan.step_seconds_now - plan.step_seconds_new
        assert plan.projected_saving == pytest.approx(delta * 1000)
        assert plan.step_seconds_now == pytest.approx(25 / 0.5)

    def test_min_share_respected(self):
        planner = RebalancePlanner(_policy(min_share=5, threshold=0.0))
        plan = planner.propose([1e-6, 1.0, 1.0, 1.0], [25, 25, 25, 25],
                               steps_remaining=10 ** 9)
        assert plan is not None
        assert min(plan.shares) >= 5

    def test_commit_records_history(self):
        planner = RebalancePlanner(_policy())
        plan = planner.propose([0.5, 1.0], [50, 50], 1000, now=3.0)
        planner.commit(3.0, plan)
        assert planner.last_commit == 3.0
        assert planner.history == [plan]
