"""Method-as-cost: structural per-rank speeds of a hybrid method map."""

import pytest

from repro.balance import LoadEstimator, method_node_speeds, \
    seed_method_speeds
from repro.distrib import ProblemSpec

HYBRID = {
    "default": "lb",
    "regions": [{"box": [[16, 0], [32, 24]], "method": "fd"}],
}


def _spec(method=HYBRID, blocks=(2, 1)):
    return ProblemSpec(
        method=method,
        grid_shape=(32, 24),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1},
        geometry={"kind": "channel"},
    )


class TestModelSpeeds:
    def test_ratio_follows_the_paper_table(self):
        """§7 measures 2D FD at 1.24x the LB node rate on the 715/50."""
        from repro.cluster.calibration import RELATIVE_SPEED

        lb_rate, fd_rate = method_node_speeds(_spec())
        assert fd_rate / lb_rate == pytest.approx(
            RELATIVE_SPEED[("fd", 2)]["715/50"]
            / RELATIVE_SPEED[("lb", 2)]["715/50"]
        )

    def test_uniform_spec_is_flat(self):
        speeds = method_node_speeds(_spec(method="lb", blocks=(2, 2)))
        assert len(speeds) == 4
        assert len(set(speeds)) == 1

    def test_rank_alignment(self):
        """Speeds line up with methods_by_rank on a 4-rank chain."""
        spec = _spec(blocks=(4, 1))
        assert spec.methods_by_rank() == ("lb", "lb", "fd", "fd")
        s = method_node_speeds(spec)
        assert s[0] == s[1] < s[2] == s[3]


class TestCalibrationTable:
    def test_measured_table_overrides_model(self):
        s = method_node_speeds(_spec(), calibration={"fd": 4e5, "lb": 1e5})
        assert s == [1e5, 4e5]

    def test_missing_method_is_loud(self):
        with pytest.raises(ValueError, match="lacks methods"):
            method_node_speeds(_spec(), calibration={"lb": 1e5})


class TestSeeding:
    def test_seeds_estimator_with_structural_rates(self):
        spec = _spec(blocks=(4, 1))
        n = spec.build_decomposition().n_active
        est = LoadEstimator([192] * n)
        seeded = seed_method_speeds(est, spec)
        speeds = est.speeds()
        assert speeds[2] > speeds[0]
        assert speeds[2] / speeds[0] == pytest.approx(
            seeded[2] / seeded[0]
        )
