"""The load estimator: EMA smoothing, load scaling, pace tracking."""

import pytest

from repro.balance import LoadEstimator


class TestSpeeds:
    def test_uniform_before_any_signal(self):
        est = LoadEstimator([100, 100, 100])
        speeds = est.speeds()
        assert len(speeds) == 3
        assert len(set(speeds)) == 1

    def test_declared_load_divides_speed(self):
        """§5 machine model: speed = base / (1 + load)."""
        est = LoadEstimator([100, 100])
        est.observe_load(0, 2.0)
        s = est.speeds()
        assert s[0] == pytest.approx(s[1] / 3.0)

    def test_measured_compute_time_sets_rate(self):
        est = LoadEstimator([100, 200], alpha=1.0)
        # rank 0: 0.01 s for 100 nodes; rank 1: 0.01 s for 200 nodes
        est.observe_heartbeat(0, step=5, wall=1.0, comp_seconds=0.01)
        est.observe_heartbeat(1, step=5, wall=1.0, comp_seconds=0.01)
        s = est.speeds()
        assert s[1] == pytest.approx(2 * s[0])
        assert s[0] == pytest.approx(100 / 0.01)

    def test_signals_compose_multiplicatively(self):
        est = LoadEstimator([100, 100], alpha=1.0)
        for r in (0, 1):
            est.observe_heartbeat(r, step=1, wall=0.0, comp_seconds=0.01)
        est.observe_load(1, 1.0)
        s = est.speeds()
        assert s[1] == pytest.approx(s[0] / 2.0)

    def test_unmeasured_rank_borrows_mean(self):
        est = LoadEstimator([100, 100], alpha=1.0)
        est.observe_heartbeat(0, step=1, wall=0.0, comp_seconds=0.02)
        s = est.speeds()
        assert s[1] == pytest.approx(s[0])

    def test_ema_smooths_samples(self):
        est = LoadEstimator([100], alpha=0.5)
        est.observe_heartbeat(0, 1, 0.0, comp_seconds=0.01)
        est.observe_heartbeat(0, 2, 1.0, comp_seconds=0.02)
        # EMA of per-node seconds: 0.5*2e-4 + 0.5*1e-4
        assert est.speeds()[0] == pytest.approx(1.0 / 1.5e-4)

    def test_set_nodes_keeps_per_node_rates(self):
        est = LoadEstimator([100, 100], alpha=1.0)
        est.observe_heartbeat(0, 1, 0.0, comp_seconds=0.01)
        before = est.speeds()[0]
        est.set_nodes([50, 150])
        assert est.speeds()[0] == pytest.approx(before)

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            LoadEstimator([10], alpha=0.0)
        with pytest.raises(ValueError):
            LoadEstimator([10], alpha=1.5)


class TestPaceAndProgress:
    def test_pace_from_consecutive_heartbeats(self):
        est = LoadEstimator([10, 10], alpha=1.0)
        est.observe_heartbeat(0, 10, 100.0)
        est.observe_heartbeat(0, 20, 101.0)   # 0.1 s/step
        est.observe_heartbeat(1, 10, 100.0)
        est.observe_heartbeat(1, 20, 102.0)   # 0.2 s/step - slowest
        assert est.seconds_per_step() == pytest.approx(0.2)

    def test_pace_none_before_two_beats(self):
        est = LoadEstimator([10])
        assert est.seconds_per_step() is None
        est.observe_heartbeat(0, 1, 0.0)
        assert est.seconds_per_step() is None

    def test_min_step_requires_all_ranks(self):
        est = LoadEstimator([10, 10])
        assert est.min_step() is None
        est.observe_heartbeat(0, 7, 0.0)
        assert est.min_step() is None
        est.observe_heartbeat(1, 3, 0.0)
        assert est.min_step() == 3

    def test_measured_flag(self):
        est = LoadEstimator([10, 10])
        assert not est.measured()
        est.observe_heartbeat(0, 1, 0.0, comp_seconds=0.01)
        assert not est.measured()
        est.observe_heartbeat(1, 1, 0.0, comp_seconds=0.01)
        assert est.measured()


class TestCalibratedSeeds:
    """Offline backend calibration feeding the estimator's priors."""

    def test_seed_speeds_sets_rates(self):
        est = LoadEstimator([100, 100])
        est.seed_speeds([50_000.0, 200_000.0])
        s = est.speeds()
        assert s[0] == pytest.approx(50_000.0)
        assert s[1] == pytest.approx(200_000.0)
        assert est.measured()

    def test_seed_speeds_ignores_bad_entries(self):
        est = LoadEstimator([100, 100])
        est.seed_speeds([0.0, 100_000.0])
        assert not est.measured()  # rank 0 left unseeded
        assert est.speeds()[1] == pytest.approx(100_000.0)

    def test_live_heartbeats_refine_seeds(self):
        est = LoadEstimator([100], alpha=1.0)
        est.seed_speeds([10_000.0])
        # measured: 100 nodes in 0.001 s -> 100_000 nodes/s, alpha=1
        est.observe_heartbeat(0, step=1, wall=0.0, comp_seconds=0.001)
        assert est.speeds()[0] == pytest.approx(100_000.0)

    def test_calibrated_speeds_maps_backends(self):
        from repro.balance import calibrated_speeds

        table = {"numpy": 1e6, "numba": 8e6}
        speeds = calibrated_speeds(
            ["numba", "numpy", "", "numba"], table
        )
        assert speeds == [8e6, 1e6, 1e6, 8e6]

    def test_unknown_backend_borrows_numpy(self):
        from repro.balance import calibrated_speeds

        # numba missing from the table (host without numba): the rank
        # will run numpy via the fallback resolver, so weight it so
        speeds = calibrated_speeds(["numba"], {"numpy": 1e6})
        assert speeds == [1e6]

    def test_empty_table_rejected(self):
        from repro.balance import calibrated_speeds

        with pytest.raises(ValueError, match="empty calibration"):
            calibrated_speeds(["numpy"], {})

    def test_calibrate_backends_measures_this_host(self):
        from repro.cluster.calibration import calibrate_backends

        table = calibrate_backends(side=16, steps=2, repeats=1)
        assert table["numpy"] > 0
        for name in table:
            assert name in ("numpy", "numba", "numba-serial")

    def test_calibration_weights_decomposition(self):
        """The measured ratios drive a weighted re-cut end to end."""
        from repro.balance import calibrated_speeds
        from repro.core import Decomposition

        table = {"numpy": 1e6, "numba": 3e6}
        weights = calibrated_speeds(["numpy", "numba"], table)
        d = Decomposition(
            (40, 8), (2, 1), periodic=(True, False),
            weights=(tuple(weights), None),
        )
        sizes = [blk.shape[0] for blk in d.active_blocks()]
        assert sizes[1] > sizes[0]  # the 3x backend owns the bigger cut
