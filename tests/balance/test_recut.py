"""Re-cutting dumped state into weighted blocks: the live epoch's core."""

import numpy as np
import pytest

from repro.balance import RecutError, check_rebalanceable, recut_problem
from repro.core import assemble_global
from repro.distrib import (
    ProblemSpec,
    decompose_problem,
    initial_fields,
    load_dumps,
)


def _spec(blocks=(4, 1), grid_shape=(48, 24), weights=None):
    return ProblemSpec(
        method="lb",
        grid_shape=grid_shape,
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1},
        geometry={"kind": "channel"},
        weights=weights,
    )


def _workdir(tmp_path, spec, seed=11):
    fields = initial_fields(spec, "random", seed=seed)
    decompose_problem(spec, fields, tmp_path)
    return fields


class TestCheckRebalanceable:
    def test_chain_all_active_passes(self):
        check_rebalanceable(_spec().build_decomposition())

    def test_non_chain_rejected(self):
        d = _spec(blocks=(2, 2)).build_decomposition()
        with pytest.raises(RecutError, match="chain"):
            check_rebalanceable(d)

    def test_inactive_blocks_rejected(self):
        from repro.core import Decomposition

        solid = np.zeros((48, 24), dtype=bool)
        solid[:12] = True  # rank 0's whole slab is solid -> inactive
        d = Decomposition((48, 24), (4, 1), periodic=(False, False),
                          solid=solid)
        assert d.n_active < d.n_blocks
        with pytest.raises(RecutError, match="active"):
            check_rebalanceable(d)


class TestRecutProblem:
    def test_bad_share_count_rejected(self, tmp_path):
        _workdir(tmp_path, _spec())
        with pytest.raises(RecutError, match="shares for"):
            recut_problem(tmp_path, [24, 24], in_tag="state",
                          out_tag="recut")

    def test_bad_share_sum_rejected(self, tmp_path):
        _workdir(tmp_path, _spec())
        with pytest.raises(RecutError, match="sum"):
            recut_problem(tmp_path, [10, 10, 10, 10], in_tag="state",
                          out_tag="recut")

    def test_mismatched_steps_rejected(self, tmp_path):
        _workdir(tmp_path, _spec())
        subs = load_dumps(tmp_path / "dumps", 4)
        subs[2].step = 7
        from repro.distrib import dump_path, save_dump

        save_dump(subs[2], dump_path(tmp_path / "dumps", 2))
        with pytest.raises(RecutError, match="different steps"):
            recut_problem(tmp_path, [6, 15, 15, 12], in_tag="state",
                          out_tag="recut")

    def test_new_extents_match_shares(self, tmp_path):
        _workdir(tmp_path, _spec())
        shares = [6, 15, 15, 12]
        new = recut_problem(tmp_path, shares, in_tag="state",
                            out_tag="recut")
        rows = [b.hi[0] - b.lo[0]
                for b in sorted(new.active_blocks(), key=lambda b: b.rank)]
        assert rows == shares
        assert new.n_active_nodes == _spec().build_decomposition().n_active_nodes

    def test_spec_rewritten_with_weights(self, tmp_path):
        spec = _spec()
        _workdir(tmp_path, spec)
        shares = [6, 15, 15, 12]
        recut_problem(tmp_path, shares, in_tag="state", out_tag="recut")
        reloaded = ProblemSpec.load(tmp_path / "spec.json")
        assert reloaded.weights == ((6, 15, 15, 12), None)
        # the restarted workers rebuild the exact same decomposition
        rows = [b.hi[0] - b.lo[0]
                for b in sorted(reloaded.build_decomposition().active_blocks(),
                                key=lambda b: b.rank)]
        assert rows == shares

    def test_global_fields_preserved_bit_for_bit(self, tmp_path):
        spec = _spec()
        fields = _workdir(tmp_path, spec, seed=3)
        new = recut_problem(tmp_path, [6, 15, 15, 12], in_tag="state",
                            out_tag="recut")
        subs = load_dumps(tmp_path / "dumps", 4, tag="recut")
        for name in ("rho", "u", "v"):
            got = assemble_global(new, subs, name)
            np.testing.assert_array_equal(got, fields[name], err_msg=name)

    def test_round_trip_back_to_uniform(self, tmp_path):
        """Re-cut twice (skew, then back) and the state is unchanged."""
        spec = _spec()
        fields = _workdir(tmp_path, spec, seed=9)
        recut_problem(tmp_path, [6, 15, 15, 12], in_tag="state",
                      out_tag="skew")
        # rename the skewed dumps to be the next input tag
        for rank in range(4):
            from repro.distrib import dump_path

            dump_path(tmp_path / "dumps", rank, tag="skew").rename(
                dump_path(tmp_path / "dumps", rank, tag="skew_in"))
        new = recut_problem(tmp_path, [12, 12, 12, 12], in_tag="skew_in",
                            out_tag="back")
        subs = load_dumps(tmp_path / "dumps", 4, tag="back")
        for name in subs[0].field_names():
            got = assemble_global(new, subs, name)
            ref = np.asarray(fields[name]) if name in fields else None
            if ref is not None:
                np.testing.assert_array_equal(got, ref, err_msg=name)

    def test_ghosts_filled_from_global_state(self, tmp_path):
        """Recut dump ghosts equal what a fresh decomposition of the
        same global state produces — i.e. what exchanges would fill."""
        spec = _spec()
        fields = _workdir(tmp_path, spec, seed=5)
        shares = [6, 15, 15, 12]
        recut_problem(tmp_path, shares, in_tag="state", out_tag="recut")
        got = load_dumps(tmp_path / "dumps", 4, tag="recut")
        ref_dir = tmp_path / "ref"
        ref_spec = _spec(weights=(tuple(shares), None))
        decompose_problem(ref_spec, fields, ref_dir)
        ref = load_dumps(ref_dir / "dumps", 4)
        for g, r in zip(got, ref):
            for name in g.fields:
                np.testing.assert_array_equal(
                    g.fields[name], r.fields[name], err_msg=name)
