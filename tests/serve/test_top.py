"""``repro top`` rendering: a pure function of one /cluster snapshot."""

import io

from repro.serve import render, watch

SNAPSHOT = {
    "wall": 1000.0,
    "address": "127.0.0.1:4242",
    "queue_depth": 3,
    "worker_deaths": 1,
    "cache": {"hits": 5, "misses": 2, "entries": 2},
    "jobs_by_state": {"done": 4, "queued": 3, "running": 2},
    "workers": [
        {
            "index": 0, "host": "pool-00", "pid": 111, "alive": True,
            "heartbeat": {"state": "busy", "job": "j000008-cafecafe",
                          "jobs_done": 4, "wall": 998.5},
        },
        {
            "index": 1, "host": "pool-01", "pid": None, "alive": False,
            "heartbeat": None,
        },
    ],
    "jobs": [
        {"job_id": "j000008-cafecafe", "state": "running",
         "backend": "serial", "priority": 5, "worker": 0, "retries": 1,
         "elapsed": 0.0, "cached": False},
        {"job_id": "j000007-beefbeef", "state": "done",
         "backend": "distributed", "priority": 0, "worker": -1,
         "retries": 0, "elapsed": 3.25, "cached": True},
    ],
}


class TestRender:
    def test_header_carries_the_service_counters(self):
        text = render(SNAPSHOT)
        assert "127.0.0.1:4242" in text
        assert "queue 3" in text
        assert "5 hit / 2 miss / 2 stored" in text
        assert "worker deaths 1" in text
        assert "done=4  queued=3  running=2" in text

    def test_worker_rows(self):
        lines = render(SNAPSHOT).splitlines()
        busy = next(l for l in lines if "pool-00" in l)
        assert "busy" in busy and "j000008-cafecafe" in busy
        assert "1.5s" in busy  # heartbeat age = wall - hb wall
        dead = next(l for l in lines if "pool-01" in l)
        assert "dead" in dead

    def test_job_rows(self):
        text = render(SNAPSHOT)
        assert "j000007-beefbeef" in text
        assert "3.250" in text
        assert "True" in text   # the cached column

    def test_max_jobs_truncation(self):
        text = render(SNAPSHOT, max_jobs=1)
        assert "j000008-cafecafe" in text
        assert "j000007-beefbeef" not in text

    def test_empty_snapshot_renders(self):
        text = render({})
        assert "none yet" in text


class _StubClient:
    def __init__(self, snap):
        self.snap = snap
        self.calls = 0

    def cluster(self):
        self.calls += 1
        return self.snap


class TestWatch:
    def test_bounded_iterations(self):
        client = _StubClient(SNAPSHOT)
        out = io.StringIO()
        watch(client, interval=0.0, iterations=2, out=out)
        assert client.calls == 2
        assert out.getvalue().count("repro serve @") == 2
