"""The job state machine and the append-only history store."""

import json

import pytest

from repro.serve import (
    STATES,
    TERMINAL,
    TRANSITIONS,
    JobHistory,
    JobRecord,
)


def _rec(job_id="j000000-aaaaaaaa", **kw) -> JobRecord:
    return JobRecord(job_id=job_id, fingerprint="a" * 64, **kw)


class TestStateMachine:
    def test_happy_path(self):
        rec = _rec()
        assert rec.state == "queued"
        rec.advance("running")
        rec.advance("done")
        assert rec.terminal

    def test_retry_on_worker_death_path(self):
        rec = _rec()
        rec.advance("running")
        rec.advance("queued")       # the requeue after a worker death
        rec.advance("running")
        rec.advance("done")
        assert rec.terminal

    def test_terminal_states_are_closed(self):
        for terminal in TERMINAL:
            assert not TRANSITIONS[terminal]
            rec = _rec()
            rec.state = terminal
            for target in STATES:
                with pytest.raises(ValueError, match="illegal transition"):
                    rec.advance(target)

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError, match="unknown job state"):
            _rec().advance("exploded")

    def test_queued_cannot_jump_to_done(self):
        with pytest.raises(ValueError, match="illegal transition"):
            _rec().advance("done")

    def test_dict_roundtrip(self):
        rec = _rec(priority=3, seq=7, retries=1, cached=True,
                   elapsed=1.5, steps=40)
        assert JobRecord.from_dict(rec.to_dict()) == rec


class TestHistory:
    def test_append_and_read(self, tmp_path):
        hist = JobHistory.for_dir(tmp_path)
        rec = _rec()
        hist.append("submitted", rec)
        rec.advance("running")
        hist.append("assigned", rec)
        events = hist.read()
        assert [e["event"] for e in events] == ["submitted", "assigned"]
        assert all("wall" in e for e in events)
        assert events[-1]["job"]["state"] == "running"

    def test_replay_last_event_wins(self, tmp_path):
        hist = JobHistory.for_dir(tmp_path)
        a, b = _rec("j000000-aaaaaaaa", seq=0), _rec("j000001-bbbbbbbb",
                                                    seq=1)
        hist.append("submitted", a)
        hist.append("submitted", b)
        a.advance("running")
        a.advance("done")
        hist.append("done", a)
        table = hist.replay()
        assert table["j000000-aaaaaaaa"].state == "done"
        assert table["j000001-bbbbbbbb"].state == "queued"

    def test_replay_tolerates_torn_final_line(self, tmp_path):
        hist = JobHistory.for_dir(tmp_path)
        hist.append("submitted", _rec())
        with open(hist.path, "a") as fh:
            fh.write('{"event": "assigned", "job": {"job_id"')  # torn
        table = hist.replay()
        assert table["j000000-aaaaaaaa"].state == "queued"

    def test_replay_skips_incompatible_events(self, tmp_path):
        hist = JobHistory.for_dir(tmp_path)
        hist.append("submitted", _rec())
        with open(hist.path, "a") as fh:
            fh.write(json.dumps({
                "event": "future",
                "job": {"job_id": "jX", "no_such_field": 1},
            }) + "\n")
        assert set(hist.replay()) == {"j000000-aaaaaaaa"}

    def test_next_seq(self, tmp_path):
        hist = JobHistory.for_dir(tmp_path)
        assert hist.next_seq() == 0
        hist.append("submitted", _rec("j000004-cccccccc", seq=4))
        assert hist.next_seq() == 5

    def test_missing_file_reads_empty(self, tmp_path):
        hist = JobHistory(tmp_path / "nope.jsonl")
        assert hist.read() == []
        assert hist.replay() == {}
