"""The gateway's HTTP request parser: body bounds and header hygiene."""

import asyncio

import pytest

from repro.serve.gateway import MAX_BODY, Gateway, _HttpError


def _parse(gw: Gateway, raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await gw._read_request(reader)

    return asyncio.run(go())


@pytest.fixture()
def gw(tmp_path):
    # never started: only the parser is exercised
    return Gateway(tmp_path / "serve")


class TestRequestParsing:
    def test_normal_body_is_read(self, gw):
        method, target, headers, body = _parse(
            gw,
            b"POST /jobs HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}",
        )
        assert (method, target, body) == ("POST", "/jobs", b"{}")

    def test_oversized_body_is_rejected_with_413(self, gw):
        raw = (
            b"POST /jobs HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY + 1).encode() + b"\r\n\r\n"
        )
        with pytest.raises(_HttpError) as err:
            _parse(gw, raw)
        assert err.value.status == 413

    def test_bad_content_length_is_a_400(self, gw):
        for value in (b"banana", b"-5"):
            raw = (
                b"POST /jobs HTTP/1.1\r\nContent-Length: "
                + value + b"\r\n\r\n"
            )
            with pytest.raises(_HttpError) as err:
                _parse(gw, raw)
            assert err.value.status == 400
