"""The filesystem result cache: atomic entries that survive restarts."""

import json

import numpy as np
import pytest

from repro.serve import JobRecord, ResultCache


def _finished_job(tmp_path, job_id="j000000-aaaaaaaa"):
    """A fake finished job dir with a fields.npz artifact."""
    job_dir = tmp_path / "jobs" / job_id
    (job_dir / "run").mkdir(parents=True)
    np.savez(job_dir / "fields.npz",
             rho=np.full((4, 4), 1.25), u=np.zeros((4, 4)))
    rec = JobRecord(job_id=job_id, fingerprint="f" * 64, steps=10)
    rec.advance("running")
    rec.advance("done")
    rec.elapsed = 2.5
    return rec, job_dir


class TestResultCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        rec, job_dir = _finished_job(tmp_path)
        assert cache.put(rec.fingerprint, rec, job_dir,
                         {"elapsed": 2.5}) is True
        assert len(cache) == 1
        entry = cache.get(rec.fingerprint)
        assert entry["record"]["job_id"] == rec.job_id
        assert entry["result"] == {"elapsed": 2.5}
        assert entry["workdir"] == str(job_dir / "run")
        with np.load(entry["fields"]) as npz:
            assert npz["rho"][0, 0] == 1.25

    def test_miss_and_hit_counters(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 64) is None
        assert (cache.hits, cache.misses) == (0, 1)
        rec, job_dir = _finished_job(tmp_path)
        cache.put(rec.fingerprint, rec, job_dir, {})
        cache.get(rec.fingerprint)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_first_writer_wins(self, tmp_path):
        """Two identical jobs in flight: the second finish is a no-op."""
        cache = ResultCache(tmp_path / "cache")
        rec, job_dir = _finished_job(tmp_path)
        assert cache.put(rec.fingerprint, rec, job_dir, {"n": 1})
        rec2, job_dir2 = _finished_job(tmp_path, "j000001-bbbbbbbb")
        assert cache.put(rec.fingerprint, rec2, job_dir2,
                         {"n": 2}) is False
        assert cache.get(rec.fingerprint)["result"] == {"n": 1}

    def test_survives_reinstantiation(self, tmp_path):
        """A new ResultCache over the same root (a gateway restart)
        serves the old entries — no index to rebuild."""
        rec, job_dir = _finished_job(tmp_path)
        ResultCache(tmp_path / "cache").put(
            rec.fingerprint, rec, job_dir, {"elapsed": 2.5}
        )
        fresh = ResultCache(tmp_path / "cache")
        assert len(fresh) == 1
        assert fresh.get(rec.fingerprint)["result"]["elapsed"] == 2.5

    def test_half_written_entry_is_a_miss(self, tmp_path):
        """entry.json is the commit point; a crash before the rename
        leaves fields.npz orphaned but never a servable entry."""
        cache = ResultCache(tmp_path / "cache")
        stale = cache.root / ("e" * 64)
        stale.mkdir()
        (stale / "fields.npz").write_bytes(b"not finished")
        assert cache.get("e" * 64) is None
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        bad = cache.root / ("d" * 64)
        bad.mkdir()
        (bad / "entry.json").write_text("{torn")
        assert cache.get("d" * 64) is None

    def test_put_without_fields_refuses(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        rec, job_dir = _finished_job(tmp_path)
        (job_dir / "fields.npz").unlink()
        with pytest.raises(FileNotFoundError):
            cache.put(rec.fingerprint, rec, job_dir, {})

    def test_entry_json_is_valid_sorted_json(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        rec, job_dir = _finished_job(tmp_path)
        cache.put(rec.fingerprint, rec, job_dir, {})
        raw = (cache.root / rec.fingerprint / "entry.json").read_text()
        entry = json.loads(raw)
        assert entry["fingerprint"] == rec.fingerprint
