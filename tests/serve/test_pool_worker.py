"""The pool worker's job execution: the seed must shape the run.

The seed participates in the cache fingerprint, so it must also
participate in the computation — seed 0 is the canonical rest start,
a nonzero seed adds the reproducible random density perturbation of
the §4.1 "random" init program.
"""

import json

import numpy as np

from repro.distrib import ProblemSpec
from repro.serve.pool_worker import run_job


def _write_job(serve_dir, job_id: str, seed: int):
    spec = ProblemSpec(
        method="lb", grid_shape=(16, 12), blocks=(1, 1),
        periodic=(True, False), geometry={"kind": "channel"},
    )
    job_dir = serve_dir / "jobs" / job_id
    job_dir.mkdir(parents=True)
    (job_dir / "job.json").write_text(json.dumps({
        "job_id": job_id,
        "seed": seed,
        "backend": "serial",
        "spec": json.loads(spec.to_json()),
        "settings": {"steps": 5},
    }))
    return job_dir


def _run(serve_dir, job_id: str, seed: int) -> dict:
    job_dir = _write_job(serve_dir, job_id, seed)
    run_job(serve_dir, job_id, 0)
    error = job_dir / "error.json"
    assert not error.exists(), error.read_text()
    with np.load(job_dir / "fields.npz") as npz:
        return {k: npz[k].copy() for k in npz.files}


class TestSeedThreading:
    def test_seed_changes_the_computation(self, tmp_path):
        rest = _run(tmp_path, "j0-rest", seed=0)
        seeded = _run(tmp_path, "j1-seeded", seed=1)
        assert not np.array_equal(rest["rho"], seeded["rho"])

    def test_same_seed_is_reproducible(self, tmp_path):
        first = _run(tmp_path, "j2-a", seed=7)
        second = _run(tmp_path, "j3-b", seed=7)
        for name, ref in first.items():
            assert np.array_equal(second[name], ref)
