"""The cache key's contract: physical identity, spelled any way.

Two submissions describing the same computation must collide; any knob
that can change the produced fields must separate.  These properties
are what make the result cache *correct* rather than merely fast — a
false collision serves the wrong physics, a false separation recomputes
forever.
"""

import pytest

from repro.distrib import ProblemSpec, RunSettings
from repro.serve import canonical_request, fingerprint

SPEC_FIELDS = {
    "method": "lb",
    "grid_shape": (32, 24),
    "blocks": (2, 1),
    "periodic": (True, False),
    "params": {"nu": 0.05, "gravity": (1e-5, 0.0)},
    "geometry": {"kind": "channel"},
}


def _spec(**overrides) -> ProblemSpec:
    return ProblemSpec(**{**SPEC_FIELDS, **overrides})


class TestSpellingInvariance:
    def test_dict_and_problemspec_collide(self):
        spec = _spec()
        as_dict = {
            "method": "lb",
            "grid_shape": [32, 24],
            "blocks": [2, 1],
            "periodic": [True, False],
            "params": {"nu": 0.05, "gravity": [1e-5, 0.0]},
            "geometry": {"kind": "channel"},
        }
        assert fingerprint(spec) == fingerprint(as_dict)

    def test_field_order_independent(self):
        forward = {
            "method": "lb", "grid_shape": [16, 16],
            "blocks": [1, 1], "periodic": [True, True],
            "geometry": {"kind": "open"},
        }
        backward = {
            "geometry": {"kind": "open"}, "periodic": [True, True],
            "blocks": [1, 1], "grid_shape": [16, 16], "method": "lb",
        }
        assert fingerprint(forward) == fingerprint(backward)

    def test_defaults_explicit_or_implicit_collide(self):
        minimal = {
            "method": "lb", "grid_shape": [16, 16],
            "blocks": [1, 1], "periodic": [True, True],
        }
        spelled_out = ProblemSpec(
            method="lb", grid_shape=(16, 16), blocks=(1, 1),
            periodic=(True, True), params={}, geometry={"kind": "open"},
        )
        assert fingerprint(minimal) == fingerprint(spelled_out)

    def test_settings_default_forms_collide(self):
        spec = _spec()
        a = fingerprint(spec, settings=None)
        b = fingerprint(spec, settings={})
        c = fingerprint(spec, settings=RunSettings(steps=0))
        assert a == b == c

    def test_operational_knobs_do_not_separate(self):
        """Transport, tracing, checkpoint cadence, delays: *how* the
        run executes, never *what* it computes."""
        spec = _spec()
        base = fingerprint(spec, settings={"steps": 50})
        for knob in (
            {"transport": "udp"},
            {"trace": True},
            {"save_every": 5},
            {"step_delay": 0.01},
            {"hb_every": 0.5},
            {"job_id": "j000001-deadbeef"},
        ):
            assert fingerprint(spec, settings={"steps": 50, **knob}) \
                == base, f"{knob} leaked into the cache key"


class TestPhysicalSensitivity:
    def test_spec_params_separate(self):
        assert fingerprint(_spec()) != fingerprint(
            _spec(params={"nu": 0.06, "gravity": (1e-5, 0.0)})
        )

    def test_grid_shape_separates(self):
        assert fingerprint(_spec()) != fingerprint(
            _spec(grid_shape=(32, 32))
        )

    def test_steps_separate(self):
        spec = _spec()
        assert fingerprint(spec, settings={"steps": 50}) \
            != fingerprint(spec, settings={"steps": 51})

    def test_seed_separates(self):
        spec = _spec()
        assert fingerprint(spec, seed=0) != fingerprint(spec, seed=1)

    def test_kernel_backend_separates(self):
        """Backend parity is ~1e-10, not bit-for-bit, so the kernel
        backend stays inside the key."""
        spec = _spec()
        assert fingerprint(spec, settings={"steps": 10}) != fingerprint(
            spec, settings={"steps": 10, "backend": "numpy"}
        )


class TestHybridSpecs:
    """v2 method maps in the cache key — and v1 keys frozen in place."""

    HYBRID = {
        "default": "lb",
        "regions": [{"box": [[16, 0], [32, 24]], "method": "fd"}],
    }

    def test_v1_fingerprint_frozen(self):
        """Golden value computed before the hybrid redesign: v1 specs
        serialize without a spec_version key, so every cache entry and
        job directory minted by older builds keeps resolving."""
        as_dict = {
            "method": "lb", "grid_shape": [32, 24], "blocks": [2, 1],
            "periodic": [True, False],
            "params": {"nu": 0.05, "gravity": [1e-5, 0.0]},
            "geometry": {"kind": "channel"},
        }
        assert fingerprint(as_dict) == (
            "2bd14480455f284330117419785f36b1"
            "ddbc7e2fe642253969c71168f6b2c10c"
        )

    def test_single_method_map_collides_with_plain_string(self):
        """A region map that selects one method everywhere is the same
        physics as the plain string — it must hit the same cache line."""
        noop_map = {
            "default": "lb",
            "regions": [{"box": [[0, 0], [16, 24]], "method": "lb"}],
        }
        assert fingerprint(_spec(method=noop_map)) == fingerprint(_spec())

    def test_hybrid_separates_from_uniform(self):
        assert fingerprint(_spec(method=self.HYBRID)) != fingerprint(_spec())

    def test_region_box_separates(self):
        other = {
            "default": "lb",
            "regions": [{"box": [[0, 0], [16, 24]], "method": "fd"}],
        }
        assert fingerprint(_spec(method=self.HYBRID)) \
            != fingerprint(_spec(method=other))

    def test_hybrid_spelling_invariant(self):
        """Tuples vs lists and dict-vs-ProblemSpec submission spell the
        same hybrid problem."""
        spelled = {
            "default": "lb",
            "regions": ({"box": ((16, 0), (32, 24)), "method": "fd"},),
        }
        assert fingerprint(_spec(method=self.HYBRID)) \
            == fingerprint(_spec(method=spelled))


class TestRejection:
    def test_unknown_settings_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown settings knob"):
            fingerprint(_spec(), settings={"stepz": 50})

    def test_canonical_request_shape(self):
        canon = canonical_request(_spec(), settings={"steps": 7}, seed=3)
        assert canon["version"] == 1
        assert canon["seed"] == 3
        assert canon["settings"]["steps"] == 7
        # the canonical form is pure JSON types (tuples flattened)
        import json

        assert json.loads(json.dumps(canon)) == canon
