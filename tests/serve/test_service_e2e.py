"""End-to-end service-layer acceptance: a live gateway + worker pool.

The PR's contract, executed for real: the gateway accepts at least 8
concurrent specs on a shared pool, every job's final fields match the
serial backend bit-for-bit, an identical resubmission is served from
the cache with zero recompute, the cache survives a gateway restart,
a worker death retries the in-flight job to completion, and both the
live NDJSON stream and the facade's ``backend="service"`` path speak
the same protocol.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro.distrib import ProblemSpec
from repro.serve import Gateway, ServeClient

pytestmark = pytest.mark.slow

STEPS = 30


def _spec(i: int) -> ProblemSpec:
    """Small LB channel problems, distinct per index (different nu)."""
    return ProblemSpec(
        method="lb",
        grid_shape=(24, 16),
        blocks=(1, 1),
        periodic=(True, False),
        params={"nu": 0.04 + 0.002 * i, "gravity": (1e-5, 0.0)},
        geometry={"kind": "channel"},
    )


def _reference(spec: ProblemSpec) -> dict:
    return repro.run(spec, backend="serial", steps=STEPS).fields


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    gw = Gateway(
        tmp_path_factory.mktemp("serve"),
        workers=2, batch_size=4, poll=0.02,
    )
    gw.start_background()
    yield gw
    gw.shutdown()


class TestServiceEndToEnd:
    def test_eight_concurrent_specs_then_cached_resubmission(self, gateway):
        n = 8
        submitted: dict[int, dict] = {}
        errors: list[Exception] = []

        def submit(i: int) -> None:
            try:
                client = ServeClient(gateway.address)
                submitted[i] = client.submit(
                    _spec(i),
                    settings={"steps": STEPS, "diag_every": 10},
                )
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=submit, args=(i,)) for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert len(submitted) == n
        assert len({rec["job_id"] for rec in submitted.values()}) == n

        client = ServeClient(gateway.address)
        finished = {
            i: client.wait(rec["job_id"], timeout=180.0)
            for i, rec in submitted.items()
        }
        for i, rec in finished.items():
            assert rec["state"] == "done", rec
            assert not rec["cached"]

        # both pool workers really shared the load
        workers_used = {rec["worker"] for rec in finished.values()}
        assert len(workers_used) == 2, finished

        # bit-for-bit against the serial backend, for every job
        for i in range(n):
            fields = client.fields(submitted[i]["job_id"])
            for name, ref in _reference(_spec(i)).items():
                assert np.array_equal(fields[name], ref), \
                    f"job {i} field {name} diverged from serial"

        # --- identical resubmission: answered at submit time, zero
        # compute, bit-identical artifact ---
        hits_before = gateway.cache.hits
        jobs_before = sorted(
            p.name for p in gateway.scheduler.jobs_dir.iterdir()
        )
        for i in range(n):
            rec = client.submit(
                _spec(i), settings={"steps": STEPS, "diag_every": 10}
            )
            assert rec["state"] == "done"
            assert rec["cached"] is True
            assert rec["elapsed"] == 0.0
            assert rec["worker"] == -1
            payload = client.result(rec["job_id"])
            assert payload["computed_by"] == submitted[i]["job_id"]
            fields = client.fields(rec["job_id"])
            first = client.fields(submitted[i]["job_id"])
            assert all(
                np.array_equal(fields[k], first[k]) for k in fields
            )
        assert gateway.cache.hits >= hits_before + n
        # zero recompute: no new job directories were ever created
        jobs_after = sorted(
            p.name for p in gateway.scheduler.jobs_dir.iterdir()
        )
        assert jobs_after == jobs_before

    def test_stream_follows_diagnostics_to_the_end(self, gateway):
        client = ServeClient(gateway.address)
        rec = client.submit(
            _spec(20), settings={"steps": STEPS, "diag_every": 5}
        )
        events = list(client.stream(rec["job_id"]))
        assert events[-1]["event"] == "end"
        assert events[-1]["state"] == "done"
        diags = [e for e in events if e["event"] == "diagnostics"]
        assert len(diags) >= STEPS // 5
        assert all("max_speed" in d["record"] for d in diags)

    def test_cancel_is_terminal(self, gateway):
        client = ServeClient(gateway.address)
        rec = client.submit(_spec(21), settings={"steps": 5000})
        cancelled = client.cancel(rec["job_id"])
        assert cancelled["state"] == "cancelled"
        final = client.wait(rec["job_id"], timeout=30.0)
        assert final["state"] == "cancelled"

    def test_cluster_snapshot_and_render(self, gateway):
        from repro.serve import render

        snap = ServeClient(gateway.address).cluster()
        assert snap["address"] == gateway.address
        assert len(snap["workers"]) == 2
        assert snap["cache"]["entries"] >= 8
        text = render(snap)
        assert gateway.address in text
        assert "pool-00" in text

    def test_facade_service_backend(self, gateway):
        result = repro.run(
            _spec(22), backend="service", steps=STEPS,
            server=gateway.address,
        )
        assert result.backend == "service"
        assert result.job_id
        assert not result.cached
        for name, ref in _reference(_spec(22)).items():
            assert np.array_equal(result.fields[name], ref)
        again = repro.run(
            _spec(22), backend="service", steps=STEPS,
            server=gateway.address,
        )
        assert again.cached is True
        assert again.elapsed == 0.0


class TestRestartAndRetry:
    def test_cache_survives_gateway_restart(self, tmp_path):
        serve_dir = tmp_path / "serve"
        first = Gateway(serve_dir, workers=1, poll=0.02)
        first.start_background()
        try:
            client = ServeClient(first.address)
            rec = client.submit(_spec(0), settings={"steps": STEPS})
            done = client.wait(rec["job_id"], timeout=180.0)
            assert done["state"] == "done" and not done["cached"]
            computed_id = rec["job_id"]
            reference = client.fields(computed_id)
        finally:
            first.shutdown()

        second = Gateway(serve_dir, workers=1, poll=0.02)
        second.start_background()
        try:
            # the replayed job table still knows the computed job
            assert second.scheduler.records[computed_id].state == "done"
            client = ServeClient(second.address)
            rec = client.submit(_spec(0), settings={"steps": STEPS})
            assert rec["cached"] is True and rec["state"] == "done"
            payload = client.result(rec["job_id"])
            assert payload["computed_by"] == computed_id
            fields = client.fields(rec["job_id"])
            assert all(
                np.array_equal(fields[k], reference[k]) for k in fields
            )
        finally:
            second.shutdown()

    def test_worker_death_retries_the_job(self, tmp_path):
        gw = Gateway(tmp_path / "serve", workers=1, poll=0.02)
        gw.start_background()
        try:
            client = ServeClient(gw.address)
            rec = client.submit(_spec(1), settings={"steps": 4000})
            job_id = rec["job_id"]
            deadline = time.monotonic() + 60.0
            while client.job(job_id)["state"] != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.005)
            gw.pool.kill(0)
            final = client.wait(job_id, timeout=300.0)
            assert final["state"] == "done", final
            assert final["retries"] >= 1, \
                "the death never registered as a retry"
            assert gw.pool.deaths >= 1
            # the retried run still committed a complete artifact
            result = client.result(job_id)
            assert result["result"]["steps"] == 4000
            assert client.fields(job_id)
        finally:
            gw.shutdown()
