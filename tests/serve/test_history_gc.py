"""Job-history garbage collection: ``jobs.jsonl`` compaction.

The history file is append-only (one line per state transition), so a
long-lived gateway grows it without bound; compaction rewrites it down
to the last event per job without changing what ``replay()`` rebuilds.
"""

import json

import pytest

from repro.serve.jobs import JobHistory, JobRecord


def _fill(history: JobHistory, n_jobs: int, events_per_job: int = 4):
    for i in range(n_jobs):
        rec = JobRecord(job_id=f"j{i:06d}-deadbeef", fingerprint="f" * 64,
                        seq=i)
        history.append("submitted", rec)
        for _ in range(events_per_job - 2):
            rec.advance("running")
            history.append("assigned", rec)
            rec.state = "queued"  # force extra transitions for bulk
        rec.state = "running"
        rec.advance("done")
        history.append("done", rec)


class TestCompact:
    def test_replay_is_unchanged(self, tmp_path):
        history = JobHistory(tmp_path / "jobs.jsonl")
        _fill(history, 7)
        before = history.replay()
        stats = history.compact()
        after = history.replay()
        assert after == before
        assert stats["events_after"] == 7
        assert stats["events_before"] > stats["events_after"]
        assert stats["bytes_after"] < stats["bytes_before"]
        # one line per job survives
        lines = history.path.read_text().splitlines()
        assert len(lines) == 7

    def test_idempotent(self, tmp_path):
        history = JobHistory(tmp_path / "jobs.jsonl")
        _fill(history, 3)
        history.compact()
        text = history.path.read_text()
        stats = history.compact()
        assert history.path.read_text() == text
        assert stats["events_before"] == stats["events_after"] == 3

    def test_drops_torn_final_line(self, tmp_path):
        history = JobHistory(tmp_path / "jobs.jsonl")
        _fill(history, 2)
        with open(history.path, "a") as fh:
            fh.write('{"event": "done", "job": {"job_id"')  # torn
        history.compact()
        assert len(history.replay()) == 2
        for line in history.path.read_text().splitlines():
            json.loads(line)

    def test_missing_file_is_a_noop(self, tmp_path):
        history = JobHistory(tmp_path / "jobs.jsonl")
        stats = history.compact()
        assert stats["events_before"] == 0
        assert not history.path.exists()

    def test_keeps_chronological_order(self, tmp_path):
        """Survivors stay ordered by their last event, so timeline
        readers (repro top) see history in wall order."""
        history = JobHistory(tmp_path / "jobs.jsonl")
        a = JobRecord(job_id="j000000-aaaaaaaa", fingerprint="a" * 64,
                      seq=0)
        b = JobRecord(job_id="j000001-bbbbbbbb", fingerprint="b" * 64,
                      seq=1)
        history.append("submitted", a)
        history.append("submitted", b)
        b.advance("running")
        history.append("assigned", b)
        a.advance("running")
        history.append("assigned", a)  # a's last event is after b's
        history.compact()
        order = [
            json.loads(line)["job"]["job_id"]
            for line in history.path.read_text().splitlines()
        ]
        assert order == ["j000001-bbbbbbbb", "j000000-aaaaaaaa"]


class TestGatewayBootGC:
    def test_oversized_history_is_compacted_at_boot(self, tmp_path):
        from repro.serve import Gateway

        history = JobHistory.for_dir(tmp_path)
        _fill(history, 5, events_per_job=20)
        size = history.path.stat().st_size
        gw = Gateway(tmp_path, workers=1, history_gc_bytes=size // 2)
        assert history.path.stat().st_size < size
        assert len(gw.scheduler.records) == 5
        lines = history.path.read_text().splitlines()
        # compaction + one possible recovery event per job
        assert len(lines) <= 10

    def test_small_history_is_left_alone(self, tmp_path):
        from repro.serve import Gateway

        history = JobHistory.for_dir(tmp_path)
        _fill(history, 2)
        size = history.path.stat().st_size
        Gateway(tmp_path, workers=1)
        assert history.path.stat().st_size == size


@pytest.mark.slow
class TestAdminGCRoute:
    def test_client_gc_compacts_a_live_gateway(self, tmp_path):
        from repro.serve import Gateway, ServeClient

        gw = Gateway(tmp_path / "serve", workers=1, poll=0.02)
        _fill(gw.history, 4, events_per_job=10)
        gw.start_background()
        try:
            client = ServeClient(gw.address)
            stats = client.gc()
            assert stats["events_after"] <= stats["events_before"]
            assert gw.history.path.stat().st_size == \
                stats["bytes_after"]
        finally:
            gw.shutdown()
