"""Scheduler-level regressions exercised against a stub worker pool.

These pin the review fixes of the serve layer: a kill the scheduler
ordered itself (cancellation) must not charge the batch-mates' retry
budget, a per-job failure inside collection must not wedge the tick,
and pool startup must void tickets left by a previous gateway
incarnation (the restart-recovery path re-tickets every job anyway).
"""

import json
from pathlib import Path

from repro.distrib import ProblemSpec
from repro.serve import JobHistory, ResultCache, Scheduler, WorkerPool


class StubPool:
    """The file surfaces of WorkerPool without any real processes."""

    def __init__(self, root: Path, n_workers: int = 1) -> None:
        self.root = root
        self.n_workers = n_workers
        self.dead: list[int] = []   # what ensure_alive reports next
        self.killed: list[int] = []
        self.hb: dict[int, dict] = {}
        for i in range(n_workers):
            self.inbox(i).mkdir(parents=True, exist_ok=True)

    def inbox(self, index: int) -> Path:
        return self.root / f"inbox-{index:02d}"

    def alive(self, index: int) -> bool:
        return True

    def ensure_alive(self) -> list[int]:
        dead, self.dead = self.dead, []
        return dead

    def heartbeat(self, index: int) -> dict | None:
        return self.hb.get(index)

    def kill(self, index: int) -> None:
        self.killed.append(index)


def _spec() -> ProblemSpec:
    return ProblemSpec(
        method="lb", grid_shape=(8, 8), blocks=(1, 1),
        periodic=(True, False), geometry={"kind": "channel"},
    )


def _scheduler(tmp_path, n_workers=1, **kw):
    pool = StubPool(tmp_path / "pool", n_workers)
    return Scheduler(
        tmp_path, pool, ResultCache(tmp_path / "cache"),
        JobHistory.for_dir(tmp_path), **kw,
    ), pool


class TestCancelKill:
    def test_cancel_kill_does_not_charge_batchmates(self, tmp_path):
        sched, pool = _scheduler(tmp_path, batch_size=4)
        a = sched.submit(_spec(), settings={"steps": 5})
        b = sched.submit(_spec(), settings={"steps": 6})
        sched.tick()
        assert a.state == "running" and b.state == "running"
        assert a.worker == b.worker == 0

        pool.hb[0] = {"job": a.job_id}
        sched.cancel(a.job_id)
        assert pool.killed == [0]
        assert a.state == "cancelled"

        # the kill surfaces as a worker death on the next tick; the
        # batch-mate is requeued (and immediately reassigned) for free
        pool.dead = [0]
        sched.tick()
        assert b.retries == 0
        assert b.state == "running"

    def test_real_death_still_charges_retries(self, tmp_path):
        sched, pool = _scheduler(tmp_path)
        a = sched.submit(_spec(), settings={"steps": 5})
        sched.tick()
        pool.dead = [0]
        sched.tick()
        assert a.retries == 1
        assert a.state == "running"  # requeued then reassigned


class TestCollectIsolation:
    def test_cache_put_failure_does_not_wedge_the_job(self, tmp_path):
        sched, pool = _scheduler(tmp_path)
        a = sched.submit(_spec(), settings={"steps": 5})
        b = sched.submit(_spec(), settings={"steps": 6})
        sched.tick()
        # both "finish" but commit no fields.npz, so cache.put raises
        for rec in (a, b):
            (sched.job_dir(rec.job_id) / "result.json").write_text(
                json.dumps({"elapsed": 1.0})
            )
        sched.tick()
        assert a.state == "done" and b.state == "done"
        assert not sched._assigned[0]
        assert sched.cache.get(a.fingerprint) is None

    def test_one_bad_record_does_not_block_the_rest(self, tmp_path):
        sched, pool = _scheduler(tmp_path, batch_size=4)
        a = sched.submit(_spec(), settings={"steps": 5})
        b = sched.submit(_spec(), settings={"steps": 6})
        sched.tick()
        # corrupt one record so finalizing it raises inside collection
        a.state = "bogus"
        (sched.job_dir(a.job_id) / "result.json").write_text(
            json.dumps({"elapsed": 1.0})
        )
        (sched.job_dir(b.job_id) / "result.json").write_text(
            json.dumps({"elapsed": 1.0})
        )
        sched.tick()
        assert b.state == "done"


class TestStaleTickets:
    def test_start_voids_tickets_of_a_previous_incarnation(
        self, tmp_path, monkeypatch
    ):
        pool = WorkerPool(tmp_path / "serve", n_workers=2)
        survivor = pool.inbox(1)
        survivor.mkdir(parents=True)
        (survivor / "00000001_jdead.json").write_text("{}")
        # an inbox beyond n_workers, left by a wider previous pool
        extra = pool.pool_dir / "inbox-05"
        extra.mkdir(parents=True)
        (extra / "00000002_jdead.json").write_text("{}")
        monkeypatch.setattr(pool, "spawn", lambda i: None)
        pool.start()
        assert not list(survivor.glob("*.json"))
        assert not list(extra.glob("*.json"))
