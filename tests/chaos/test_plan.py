"""Fault plans: seeded, serializable, deterministic."""

import pytest

from repro.chaos import KINDS, MESSAGE_KINDS, SCENARIOS, Fault, FaultPlan
from repro.chaos.plan import DUMP_KINDS, HOST_KINDS, PROCESS_KINDS


class TestFault:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            Fault("meteor_strike")

    def test_kind_sets_partition_the_universe(self):
        groups = (PROCESS_KINDS, MESSAGE_KINDS, DUMP_KINDS, HOST_KINDS)
        assert frozenset().union(*groups) == KINDS
        for i, a in enumerate(groups):
            for b in groups[i + 1:]:
                assert not (a & b)

    def test_fault_id_distinguishes_kind_rank_step(self):
        ids = {
            Fault("kill", rank=0, step=5).fault_id,
            Fault("kill", rank=1, step=5).fault_id,
            Fault("kill", rank=0, step=6).fault_id,
            Fault("stop", rank=0, step=5).fault_id,
        }
        assert len(ids) == 4


class TestSerialization:
    def test_round_trip(self):
        plan = FaultPlan(seed=7, faults=(
            Fault("kill", rank=1, step=12),
            Fault("msg_truncate", rank=0, step=3, count=2, arg=16),
            Fault("load_spike", rank=1, at=0.5, load=2.5, seconds=30.0),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_stable(self):
        plan = FaultPlan.scenario("kill", 3, 2, 40, 10)
        assert plan.to_json() == FaultPlan.from_json(plan.to_json()).to_json()

    def test_empty_plan(self):
        assert FaultPlan.from_json("{}") == FaultPlan()


class TestViews:
    def test_for_rank_filters_rank_and_kind(self):
        plan = FaultPlan(faults=(
            Fault("kill", rank=0, step=5),
            Fault("msg_drop", rank=0, step=6),
            Fault("msg_drop", rank=1, step=6),
        ))
        assert plan.for_rank(0, MESSAGE_KINDS) == (
            Fault("msg_drop", rank=0, step=6),
        )
        assert plan.for_rank(1, PROCESS_KINDS) == ()

    def test_host_faults(self):
        spike = Fault("load_spike", rank=0, at=1.0, load=2.0, seconds=10.0)
        plan = FaultPlan(faults=(Fault("kill", step=3), spike))
        assert plan.host_faults() == (spike,)


class TestScenarios:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_deterministic_per_seed(self, name):
        a = FaultPlan.scenario(name, 5, 4, 60, 15)
        b = FaultPlan.scenario(name, 5, 4, 60, 15)
        assert a == b and a.faults

    def test_seeds_vary_the_plan(self):
        plans = {FaultPlan.scenario("kill", s, 4, 200, 20).to_json()
                 for s in range(8)}
        assert len(plans) > 1

    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            FaultPlan.scenario("gremlins", 0, 2, 40, 10)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_faults_fire_after_first_checkpoint(self, name):
        steps, save_every = 40, 10
        plan = FaultPlan.scenario(name, 0, 2, steps, save_every)
        for f in plan.faults:
            if f.kind in HOST_KINDS:
                assert f.at > 0
            else:
                assert save_every < f.step < steps
            assert 0 <= f.rank < 2

    def test_corruption_pairs_bad_dump_with_crash(self):
        plan = FaultPlan.scenario("corruption", 1, 2, 40, 10)
        kinds = {f.kind for f in plan.faults}
        assert "kill" in kinds
        assert kinds & DUMP_KINDS


class TestGenerate:
    def test_deterministic(self):
        assert (FaultPlan.generate(9, 4, 50, save_every=10)
                == FaultPlan.generate(9, 4, 50, save_every=10))

    def test_respects_kind_menu(self):
        plan = FaultPlan.generate(2, 4, 50, n_faults=6,
                                  kinds=("msg_drop", "msg_dup"))
        assert {f.kind for f in plan.faults} <= {"msg_drop", "msg_dup"}

    def test_unknown_kind_in_menu(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.generate(0, 2, 10, kinds=("asteroid",))
