"""Injectors: fired-once markers, frame filtering, dump corruption."""

import numpy as np
import pytest

from repro.chaos import (
    NULL_INJECTOR,
    ChannelFaultInjector,
    Fault,
    FiredMarkers,
    corrupt_dump,
)
from repro.core import Decomposition, make_subregions
from repro.distrib import dump_path, load_dump, save_dump
from repro.distrib.dumpfile import DumpCorruption, verify_dump


def _frame(to=1, payload=b"x" * 32, step=10):
    return (to, payload, step, 0, 0, 0)


def _injector(tmp_path, *faults):
    return ChannelFaultInjector(faults, FiredMarkers(tmp_path / "chaos"))


class TestNullInjector:
    def test_disabled(self):
        assert NULL_INJECTOR.enabled is False


class TestFiredMarkers:
    def test_claim_is_at_most_once(self, tmp_path):
        markers = FiredMarkers(tmp_path)
        fault = Fault("kill", rank=0, step=5)
        assert markers.claim(fault) is True
        assert markers.claim(fault) is False
        assert markers.already_fired(fault)

    def test_markers_survive_a_new_incarnation(self, tmp_path):
        fault = Fault("msg_drop", rank=1, step=3)
        assert FiredMarkers(tmp_path).claim(fault)
        # a restarted worker builds a fresh FiredMarkers on the same dir
        assert not FiredMarkers(tmp_path).claim(fault)


class TestFilterSend:
    def test_no_fault_passes_through(self, tmp_path):
        inj = _injector(tmp_path)
        frames, breaks = inj.filter_send(_frame())
        assert frames == [_frame()] and breaks == ()

    def test_drop_swallows_the_frame(self, tmp_path):
        inj = _injector(tmp_path, Fault("msg_drop", rank=0, step=10))
        frames, breaks = inj.filter_send(_frame(step=10))
        assert frames == [] and breaks == ()
        # fault consumed: the next frame sails through
        assert inj.filter_send(_frame(step=11))[0] == [_frame(step=11)]

    def test_dup_sends_twice(self, tmp_path):
        inj = _injector(tmp_path, Fault("msg_dup", rank=0, step=10))
        frames, _ = inj.filter_send(_frame(step=10))
        assert frames == [_frame(step=10)] * 2

    def test_delay_holds_until_next_send(self, tmp_path):
        inj = _injector(tmp_path, Fault("msg_delay", rank=0, step=10))
        held = _frame(step=10)
        assert inj.filter_send(held)[0] == []
        nxt = _frame(step=11)
        assert inj.filter_send(nxt)[0] == [held, nxt]

    def test_truncate_cuts_payload(self, tmp_path):
        inj = _injector(
            tmp_path, Fault("msg_truncate", rank=0, step=10, arg=8)
        )
        frames, _ = inj.filter_send(_frame(payload=b"y" * 32, step=10))
        (out,) = frames
        assert out[1] == b"y" * 24
        assert out[2:] == _frame(step=10)[2:]

    def test_conn_break_names_the_peer(self, tmp_path):
        inj = _injector(tmp_path, Fault("conn_break", rank=0, step=10))
        frames, breaks = inj.filter_send(_frame(to=3, step=10))
        assert frames == [_frame(to=3, step=10)]
        assert breaks == (3,)

    def test_count_spans_multiple_frames(self, tmp_path):
        inj = _injector(tmp_path,
                        Fault("msg_drop", rank=0, step=10, count=2))
        assert inj.filter_send(_frame(step=10))[0] == []
        assert inj.filter_send(_frame(step=10))[0] == []
        assert inj.filter_send(_frame(step=10))[0] == [_frame(step=10)]

    def test_fault_waits_for_its_step(self, tmp_path):
        inj = _injector(tmp_path, Fault("msg_drop", rank=0, step=10))
        assert inj.filter_send(_frame(step=9))[0] == [_frame(step=9)]
        assert inj.filter_send(_frame(step=10))[0] == []

    def test_fired_marker_retires_fault_across_incarnations(self, tmp_path):
        fault = Fault("msg_drop", rank=0, step=10)
        first = _injector(tmp_path, fault)
        assert first.filter_send(_frame(step=10))[0] == []
        # the replayed incarnation sees the marker and never re-fires
        second = _injector(tmp_path, fault)
        assert second.filter_send(_frame(step=10))[0] == [_frame(step=10)]
        assert second.fired == []


def _dump(tmp_path, seed=0):
    rng = np.random.default_rng(seed)
    shape = (20, 16)
    fields = {"rho": rng.random(shape), "f": rng.random((9,) + shape)}
    d = Decomposition(shape, (2, 2), solid=None)
    sub = make_subregions(d, 3, fields, rng.random(shape) < 0.1)[0]
    path = dump_path(tmp_path, 0, tag="ckpt000000010")
    save_dump(sub, path)
    return path


class TestDumpCorruption:
    def test_verify_accepts_clean_dump(self, tmp_path):
        verify_dump(_dump(tmp_path))

    @pytest.mark.parametrize("truncate", (False, True))
    def test_corrupted_dump_refused(self, tmp_path, truncate):
        path = _dump(tmp_path)
        corrupt_dump(path, truncate=truncate)
        with pytest.raises(DumpCorruption):
            load_dump(path)
        with pytest.raises(DumpCorruption):
            verify_dump(path)

    def test_missing_dump_refused(self, tmp_path):
        with pytest.raises(DumpCorruption):
            verify_dump(tmp_path / "nope.npz")
