"""Simulated fault injection: the charged-cost model in the simulator."""

import pytest

from repro.chaos import Fault, FaultPlan
from repro.cluster import ClusterSimulation, NetworkParams


def _sim(plan=None, blocks=(4, 1), side=80, **kw):
    return ClusterSimulation(
        "lb", 2, blocks, side,
        network=NetworkParams(),
        fault_plan=plan,
        **kw,
    )


def _plan(*faults, seed=0):
    return FaultPlan(seed=seed, faults=tuple(faults))


class TestValidation:
    def test_rank_out_of_bounds(self):
        with pytest.raises(ValueError, match="targets rank"):
            _sim(_plan(Fault("kill", rank=9, step=5)))

    def test_process_faults_need_bsp(self):
        with pytest.raises(ValueError, match="BSP barrier"):
            _sim(_plan(Fault("kill", rank=0, step=5)), sync_mode="loose")

    def test_no_plan_is_fine(self):
        assert _sim().run(steps=5).faults == []


class TestChargedCosts:
    def test_kill_charges_restart_cost(self):
        clean = _sim().run(steps=20)
        faulted = _sim(_plan(Fault("kill", rank=1, step=10))).run(
            steps=20, restart_cost=45.0
        )
        assert len(faulted.faults) == 1
        ev = faulted.faults[0]
        assert ev.kind == "kill" and ev.rank == 1
        assert ev.cost == pytest.approx(45.0)
        assert faulted.elapsed == pytest.approx(clean.elapsed + 45.0,
                                                rel=0.05)

    def test_stall_costs_more_than_kill(self):
        kill = _sim(_plan(Fault("kill", rank=1, step=10))).run(
            steps=20, restart_cost=45.0, stall_detect=60.0
        )
        stall = _sim(_plan(Fault("stop", rank=1, step=10))).run(
            steps=20, restart_cost=45.0, stall_detect=60.0
        )
        assert stall.faults[0].cost == pytest.approx(
            kill.faults[0].cost + 60.0
        )

    def test_message_fault_retransmits_on_the_bus(self):
        clean = _sim().run(steps=20)
        faulted = _sim(_plan(Fault("msg_drop", rank=1, step=10))).run(
            steps=20
        )
        assert faulted.faults[0].kind == "msg_drop"
        assert faulted.bus.messages == clean.bus.messages + 1
        assert faulted.faults[0].cost >= 0.0

    def test_window_math_survives_a_fault(self):
        # Step counters are charged, not rewound: the §7 window average
        # still indexes cleanly and stays positive.
        res = _sim(_plan(Fault("kill", rank=0, step=8))).run(steps=15)
        assert res.processors == 4
        assert res.steps == 15
        assert res.time_per_step > 0

    def test_determinism_with_faults(self):
        plan = _plan(Fault("kill", rank=2, step=7),
                     Fault("msg_dup", rank=0, step=12))
        a = _sim(plan).run(steps=20)
        b = _sim(plan).run(steps=20)
        assert a.elapsed == b.elapsed
        assert [(e.time, e.kind, e.rank) for e in a.faults] == \
               [(e.time, e.kind, e.rank) for e in b.faults]


class TestLoadSpike:
    def test_spike_slows_the_victim_host(self):
        clean = _sim().run(steps=40)
        plan = _plan(Fault("load_spike", rank=1, at=1.0, load=3.0,
                           seconds=1e6))
        faulted = _sim(plan).run(steps=40)
        assert faulted.faults[0].kind == "load_spike"
        assert faulted.elapsed > clean.elapsed

    def test_spike_can_trigger_migration(self):
        # A long heavy spike with a monitor polling fast and spare
        # hosts available must end in a §5.1 migration.
        plan = _plan(Fault("load_spike", rank=1, at=5.0, load=3.0,
                           seconds=1e6))
        res = _sim(plan).run(steps=120, monitor_poll=10.0)
        assert len(res.migrations) >= 1
