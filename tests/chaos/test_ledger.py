"""Shape assertions over the chaos/recovery span ledger.

:func:`repro.chaos.check_recovery_ledger` audits a traced chaos run
from its span streams alone: process faults must be answered by
recovery spans, checkpoint faults must be answered once a restart
consumed them, message/host faults are self-healing.  These tests
drive the checker with synthetic trace streams; the live end-to-end
path is covered by ``repro chaos`` runs in test_runner_e2e.
"""

import json
from pathlib import Path

from repro.chaos import check_recovery_ledger
from repro.chaos.runner import _ledger_spans


def _write_stream(trace_dir: Path, rank: str, names: list[str]) -> None:
    trace_dir.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps({"type": "meta", "rank": rank})]
    for i, name in enumerate(names):
        lines.append(json.dumps({
            "type": "span", "name": name, "cat": "chaos",
            "ts": float(i), "dur": 0.0, "step": i, "tid": 0,
        }))
    (trace_dir / f"trace-{rank}.jsonl").write_text("\n".join(lines) + "\n")


def test_kill_with_restart_is_clean(tmp_path):
    _write_stream(tmp_path / "trace", "0000", ["chaos:kill"])
    _write_stream(tmp_path / "trace", "0000.g1", ["recover:restart"])
    _write_stream(tmp_path / "trace", "mon", ["recover:ckpt_restart"])
    assert check_recovery_ledger(tmp_path, restarts=1) == []


def test_unanswered_kill_is_a_violation(tmp_path):
    _write_stream(tmp_path / "trace", "0000", ["chaos:kill"])
    gaps = check_recovery_ledger(tmp_path, restarts=0)
    assert len(gaps) == 1 and "kill" in gaps[0]


def test_two_kills_need_two_recoveries(tmp_path):
    _write_stream(tmp_path / "trace", "0000",
                  ["chaos:kill", "chaos:stop"])
    _write_stream(tmp_path / "trace", "mon", ["recover:ckpt_restart"])
    gaps = check_recovery_ledger(tmp_path, restarts=1)
    assert gaps and "2 process fault" in gaps[0]


def test_message_faults_are_self_healing(tmp_path):
    _write_stream(tmp_path / "trace", "0001",
                  ["chaos:msg_drop", "chaos:msg_dup"])
    assert check_recovery_ledger(tmp_path, restarts=0) == []


def test_host_faults_are_self_healing(tmp_path):
    _write_stream(tmp_path / "trace", "mon", ["chaos:load_spike"])
    assert check_recovery_ledger(tmp_path, restarts=0) == []


def test_dump_fault_without_restart_needs_nothing(tmp_path):
    """A corrupted checkpoint nobody restored from owes no recovery."""
    _write_stream(tmp_path / "trace", "0000", ["chaos:dump_corrupt"])
    assert check_recovery_ledger(tmp_path, restarts=0) == []


def test_dump_fault_with_restart_needs_recovery(tmp_path):
    _write_stream(tmp_path / "trace", "0000", ["chaos:dump_corrupt"])
    gaps = check_recovery_ledger(tmp_path, restarts=1)
    assert gaps and "checkpoint fault" in gaps[0]
    _write_stream(tmp_path / "trace", "mon", ["recover:ckpt_fallback"])
    assert check_recovery_ledger(tmp_path, restarts=1) == []


def test_missing_trace_dir_is_empty_ledger(tmp_path):
    assert check_recovery_ledger(tmp_path, restarts=0) == []


def test_torn_final_line_is_tolerated(tmp_path):
    """A killed rank can leave a half-written last line; the checker
    must parse what is intact rather than crash."""
    trace = tmp_path / "trace"
    _write_stream(trace, "0000", ["chaos:kill"])
    _write_stream(trace, "mon", ["recover:ckpt_restart"])
    with open(trace / "trace-0000.jsonl", "a") as fh:
        fh.write('{"type": "span", "name": "chaos:st')  # torn write
    spans = _ledger_spans(tmp_path)
    assert ("chaos", "kill") in spans
    assert check_recovery_ledger(tmp_path, restarts=1) == []


def test_non_ledger_spans_are_ignored(tmp_path):
    _write_stream(tmp_path / "trace", "0000",
                  ["compute:0", "exchange:0", "recover:restart",
                   "chaos:kill"])
    spans = _ledger_spans(tmp_path)
    assert spans == [("recover", "restart"), ("chaos", "kill")]
    assert check_recovery_ledger(tmp_path, restarts=1) == []
