"""Regression: injected ``conn_break`` faults must *do* something on UDP.

The channel fault injector's ``conn_break`` used to be a silent no-op on
the datagram transport — ``send_data`` discarded the breaks list, so a
chaos plan that "broke" a UDP link exercised nothing.  The transport now
honours the fault as the two costs a broken link imposes on a
connectionless protocol: the peer's resolved address is dropped (the
next send must re-handshake through the port registry) and a burst of
ACKs is discarded (the retransmit timer must re-earn delivery, which the
receiver's duplicate suppression absorbs bit-exactly).
"""

import threading

import pytest

from repro.chaos.inject import ChannelFaultInjector, FiredMarkers
from repro.chaos.plan import Fault
from repro.net import PortRegistry, UdpChannelSet


def _open_pair(tmp_path, **kw):
    reg = PortRegistry(tmp_path / "udports.txt")
    sets = {r: UdpChannelSet(r, [1 - r], reg, **kw) for r in (0, 1)}
    errors = []

    def opener(cs):
        try:
            cs.open(0, timeout=10.0)
        except Exception as exc:  # pragma: no cover
            errors.append(exc)

    threads = [
        threading.Thread(target=opener, args=(cs,)) for cs in sets.values()
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return sets


def _injector(tmp_path, faults):
    return ChannelFaultInjector(faults, FiredMarkers(tmp_path / "markers"))


class TestUdpConnBreak:
    def test_break_forces_rehandshake_and_retransmit(self, tmp_path):
        sets = _open_pair(tmp_path, rto=0.02)
        sender, receiver = sets[0], sets[1]
        sender.injector = _injector(
            tmp_path, [Fault(kind="conn_break", rank=0, step=0)]
        )

        payloads = {s: bytes([65 + s]) * 2000 for s in range(3)}
        for s, payload in payloads.items():
            sender.send_data(1, payload, step=s, phase=0, axis=0, side=1)

        # the break fired: link forgotten then re-resolved, ACK burst
        # pending on the sender side
        assert sender.conn_breaks == 1
        assert sender.has_link(1), "the re-handshake did not happen"

        got = receiver.recv_data(
            {(s, 0, 0, 1, 0) for s in payloads}, timeout=10.0
        )
        for s, payload in payloads.items():
            assert got[(s, 0, 0, 1, 0)] == payload  # bit-exact delivery

        # keep servicing the receiver so the sender's retransmissions
        # are re-ACKed while close() flushes the unacked window
        stop = threading.Event()
        server = threading.Thread(
            target=lambda: [receiver._pump(0.01) or None
                            for _ in iter(lambda: stop.is_set(), True)]
        )
        server.start()
        try:
            sender.close(flush_timeout=10.0)
        finally:
            stop.set()
            server.join()
        receiver.close()

        # the eaten ACK burst really cost retransmissions, and the
        # receiver's dedup absorbed the replays
        assert sender.retransmissions >= 1
        assert receiver.duplicates_dropped >= 1
        assert not sender._unacked, "sender never re-earned delivery"

    def test_no_injector_no_breaks(self, tmp_path):
        sets = _open_pair(tmp_path)
        sets[0].send_data(1, b"plain", step=0, phase=0, axis=0, side=1)
        got = sets[1].recv_data({(0, 0, 0, 1, 0)}, timeout=5.0)
        assert got[(0, 0, 0, 1, 0)] == b"plain"
        assert sets[0].conn_breaks == 0
        for cs in sets.values():
            cs.close()

    def test_break_on_unresolved_peer_times_out_cleanly(self, tmp_path):
        """A broken link to a peer that never re-registers is a clean
        registry timeout, not a KeyError."""
        sets = _open_pair(tmp_path, rto=0.02)
        sender = sets[0]
        sender.injector = _injector(
            tmp_path, [Fault(kind="conn_break", rank=0, step=0)]
        )
        # wipe the registry so the re-handshake cannot succeed
        sender.registry.path.write_text("")
        with pytest.raises(TimeoutError):
            sender.send_data(1, b"x", step=0, phase=0, axis=0, side=1)
        for cs in sets.values():
            cs.close()
