"""End-to-end chaos scenarios: faulted runs must heal bit-for-bit.

Each test launches a real two-rank distributed run under a seeded
fault plan and requires the runner's classification to be ``match`` —
the recovery machinery (checkpoint restart, checksum fallback,
reconnect with backoff, §5.1 migration) produced exactly the fields of
the fault-free serial run.
"""

import pytest

from repro.chaos import run_scenario

pytestmark = pytest.mark.slow


def test_kill_recovers_via_checkpoint_restart(tmp_path):
    out = run_scenario("kill", 0, tmp_path)
    assert out.outcome == "match", out.detail
    assert out.restarts == 1


def test_corruption_falls_back_one_checkpoint(tmp_path):
    out = run_scenario("corruption", 0, tmp_path)
    assert out.outcome == "match", out.detail
    # one restart heals it: the rejected checkpoint must not cost a
    # second crash (stale save tokens are reset on restart)
    assert out.restarts == 1
    log = (tmp_path / "logs" / "monitor.log").read_text()
    assert "rejected, falling back one" in log


def test_spike_migrates_instead_of_restarting(tmp_path):
    out = run_scenario("spike", 0, tmp_path)
    assert out.outcome == "match", out.detail
    assert out.migrations >= 1
    assert out.restarts == 0


def test_break_heals_by_reconnecting(tmp_path):
    out = run_scenario("break", 0, tmp_path)
    assert out.outcome == "match", out.detail
    # the broken link is re-dialed with backoff; no restart needed
    assert out.restarts == 0
