"""Chaos scenario: a worker SIGKILLed during a ``policy="rebalance"`` run.

The rebalance epoch is the run's most fragile window: workers leave
through a sync protocol, the global state is re-assembled and re-cut,
and the rewritten ``spec.json`` makes every pre-recut checkpoint (and
the initial ``state`` dumps) the wrong *shape* for a restart.  A kill
landing anywhere around that window used to be able to abort the run
with a ``MonitorError`` (mid-epoch death) or crash-loop it (restart
into decomposition-incompatible dumps).  Both paths now degrade to a
checkpoint restart, and the recovery ledger must close: every
``chaos:`` process-fault span answered by a ``recover:`` span.
"""

import pytest

from repro.chaos.plan import FaultPlan
from repro.chaos.runner import check_recovery_ledger, run_scenario


def test_rebalance_kill_plan_shape():
    """The scenario schedules exactly one kill inside the run window."""
    plan = FaultPlan.scenario("rebalance_kill", 3, 2, 40, 10)
    assert len(plan.faults) == 1
    (fault,) = plan.faults
    assert fault.kind == "kill"
    assert 11 <= fault.step <= 38


@pytest.mark.slow
def test_rebalance_kill_recovers_with_closed_ledger(tmp_path):
    """The kill races a live rebalance epoch and the run still ends in
    a bit-for-bit match with every fault span answered in the ledger."""
    out = run_scenario(
        "rebalance_kill", 0, tmp_path / "run", steps=40, save_every=10
    )
    assert out.passed, f"{out.outcome}: {out.detail}"
    assert out.outcome == "match"
    assert out.restarts >= 1, "the kill never forced a restart"
    # the skewed synthetic load really drove the planner: the run
    # executed at least one rebalance epoch around the fault
    assert out.rebalances >= 1, "no rebalance epoch ever ran"
    # ledger closure, asserted directly on the trace streams (the
    # classifier already audits this for "match", but the satellite's
    # contract is the ledger itself)
    assert check_recovery_ledger(tmp_path / "run", out.restarts) == []
