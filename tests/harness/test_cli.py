"""The repro.tools command-line interface."""

import numpy as np
import pytest

from repro.tools import main


class TestSimulate:
    def test_channel(self, tmp_path, capsys):
        out = tmp_path / "run.npz"
        rc = main([
            "simulate", "channel", "--shape", "32", "24",
            "--blocks", "2", "1", "--steps", "10", "--out", str(out),
        ])
        assert rc == 0
        data = np.load(out)
        assert set(data.files) >= {"rho", "u", "v", "solid"}
        assert data["rho"].shape == (32, 24)
        text = capsys.readouterr().out
        assert "channel" in text and "2 active" in text

    def test_cylinder_fd(self, tmp_path):
        out = tmp_path / "cyl.npz"
        rc = main([
            "simulate", "cylinder", "--method", "fd", "--shape", "64",
            "32", "--blocks", "2", "2", "--steps", "5",
            "--out", str(out),
        ])
        assert rc == 0
        assert np.isfinite(np.load(out)["u"]).all()

    def test_flue_pipe(self, tmp_path):
        out = tmp_path / "flue.npz"
        rc = main([
            "simulate", "flue_pipe", "--shape", "96", "64",
            "--blocks", "2", "2", "--steps", "5", "--out", str(out),
        ])
        assert rc == 0
        assert np.load(out)["solid"].any()


class TestCluster:
    def test_basic_run(self, capsys):
        rc = main([
            "cluster", "--blocks", "4", "1", "--side", "100",
            "--steps", "10",
        ])
        assert rc == 0
        text = capsys.readouterr().out
        assert "efficiency" in text
        assert "speedup" in text

    def test_network_preset(self, capsys):
        rc = main([
            "cluster", "--blocks", "4", "1", "1", "--side", "20",
            "--steps", "10", "--network", "atm155",
        ])
        assert rc == 0

    def test_loose_sync(self, capsys):
        rc = main([
            "cluster", "--blocks", "2", "1", "--side", "80",
            "--steps", "10", "--sync", "loose",
        ])
        assert rc == 0


class TestBench:
    def test_writes_json_and_table(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_kernels.json"
        rc = main(["bench", "--steps", "1", "--repeats", "1",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "fluid nodes/s" in text
        data = json.loads(out.read_text())
        assert set(data) >= {"host", "steps", "repeats", "cases",
                             "speedups"}
        # the numpy serial/threaded rows exist on every host; numba
        # rows appear only where numba imports
        assert set(data["cases"]) >= {
            "fd2d_serial", "fd2d_threaded", "lb2d_serial",
            "lb2d_threaded", "lb3d_serial", "lb3d_threaded",
        }
        for entry in data["cases"].values():
            assert entry["nodes_per_second"] > 0
            assert entry["seconds_per_step"] > 0
            assert entry["median_seconds_per_step"] > 0
            assert entry["stdev_seconds_per_step"] >= 0
            assert entry["fluid_nodes"] > 0
            assert entry["backend"] in ("numpy", "numba", "numba-serial")
        host = data["host"]
        assert host["cpu_count"] >= 1
        assert host["numpy"] == np.__version__
        assert "numpy" in host["backends"]
        assert data["speedups"]["fd2d_threaded_vs_serial_numpy"] > 0

    def test_quick_mode_drops_3d(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_kernels.json"
        rc = main(["bench", "--quick", "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["steps"] <= 5 and data["repeats"] <= 2
        assert not any(k.startswith("lb3d") for k in data["cases"])

    def test_unknown_backend_rejected(self, capsys):
        assert main(["bench", "--backend", "cuda"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_explicit_backend_only(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_kernels.json"
        rc = main(["bench", "--quick", "--backend", "numpy",
                   "--out", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        assert {e["backend"] for e in data["cases"].values()} == {"numpy"}


class TestCalibrate:
    def test_prints_table_and_writes_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "calibration.json"
        rc = main(["calibrate", "--side", "16", "--steps", "2",
                   "--repeats", "1", "--backends", "numpy", "numpy",
                   "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "backend calibration" in text
        assert "per-rank weights" in text
        data = json.loads(out.read_text())
        assert data["nodes_per_second"]["numpy"] > 0
        assert data["host"]["cpu_count"] >= 1

    def test_collectives_mode(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_collectives.json"
        rc = main(["bench", "--collectives", "--steps", "2",
                   "--repeats", "1", "--ranks", "3", "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "in-process collectives" in text
        assert "diagnostics overhead" in text
        data = json.loads(out.read_text())
        assert data["ranks"] == 3
        for algorithm in ("tree", "ring"):
            timings = data["collectives"][algorithm]
            assert set(timings) == {
                "barrier", "allreduce_8B", "allreduce_512KiB",
                "allgather_64B",
            }
            assert all(t > 0 for t in timings.values())
        overhead = data["diagnostics_overhead"]
        assert overhead["diag_every"] == 10
        assert overhead["base_seconds_per_step"] > 0
        assert overhead["diag_seconds_per_step"] > 0

    def test_rejects_bad_counts(self, capsys):
        assert main(["bench", "--steps", "0"]) == 2


class TestParsing:
    def test_missing_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_problem(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "tornado"])


class TestPostProcessing:
    def _saved_run(self, tmp_path):
        out = tmp_path / "run.npz"
        main([
            "simulate", "cylinder", "--shape", "64", "32",
            "--blocks", "1", "1", "--steps", "5", "--out", str(out),
        ])
        return out

    def test_image_from_fields(self, tmp_path, capsys):
        out = self._saved_run(tmp_path)
        rc = main(["image", str(out), "--field", "vorticity",
                   "--out", str(tmp_path / "w.ppm")])
        assert rc == 0
        data = (tmp_path / "w.ppm").read_bytes()
        assert data.startswith(b"P6\n")

    def test_image_named_field(self, tmp_path):
        out = self._saved_run(tmp_path)
        rc = main(["image", str(out), "--field", "rho",
                   "--out", str(tmp_path / "rho.ppm")])
        assert rc == 0

    def test_probe_spectrum(self, tmp_path, capsys):
        import numpy as np

        t = np.arange(256)
        np.savez(tmp_path / "p.npz",
                 mouth_probe=np.sin(2 * np.pi * 0.05 * t))
        rc = main(["probe", str(tmp_path / "p.npz")])
        assert rc == 0
        text = capsys.readouterr().out
        assert "dominant frequency: 0.05" in text

    def test_probe_missing_key(self, tmp_path, capsys):
        import numpy as np

        np.savez(tmp_path / "p.npz", other=np.zeros(16))
        rc = main(["probe", str(tmp_path / "p.npz")])
        assert rc == 1
