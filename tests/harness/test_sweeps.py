"""Figure sweeps: structure and headline shape properties (small sizes;
the full-resolution versions live in benchmarks/)."""

import numpy as np
import pytest

from repro.harness import (
    model_fig12,
    model_fig13,
    sweep_2d_grain,
    sweep_3d_grain,
    sweep_processors,
)


class TestGrainSweeps:
    def test_2d_structure(self):
        data = sweep_2d_grain(
            decomps=((2, 2),), sides=(40, 80), steps=10
        )
        pts = data[(2, 2)]
        assert [p.side for p in pts] == [40, 80]
        assert pts[0].processors == 4
        assert pts[0].sqrt_nodes == pytest.approx(40.0)

    def test_2d_efficiency_improves_with_grain(self):
        data = sweep_2d_grain(decomps=((3, 3),), sides=(30, 120), steps=10)
        pts = data[(3, 3)]
        assert pts[1].efficiency > pts[0].efficiency

    def test_3d_structure(self):
        data = sweep_3d_grain(
            decomps=((2, 2, 2),), sides=(10, 20), steps=8
        )
        pts = data[(2, 2, 2)]
        assert pts[0].nodes == 1000
        assert pts[0].cbrt_nodes == pytest.approx(10.0)


class TestProcessorSweep:
    def test_fig9_shape(self):
        data = sweep_processors(processors=(2, 8, 16), steps=10)
        eff2 = [p.efficiency for p in data["2d"]]
        eff3 = [p.efficiency for p in data["3d"]]
        # 2D stays high, 3D collapses (fig. 9's triangles vs crosses)
        assert eff2[-1] > eff3[-1]
        assert eff3[0] > eff3[-1]


class TestModelFigures:
    def test_fig12_curves(self):
        sides = np.array([50.0, 100.0, 200.0])
        curves = model_fig12(sides)
        assert set(curves) == {(4, 2.0), (9, 3.0), (16, 4.0), (20, 4.0)}
        for (p, m), f in curves.items():
            assert f.shape == (3,)
            assert np.all(np.diff(f) > 0)  # monotone in grain
        # more processors => lower efficiency at fixed grain
        assert curves[(20, 4.0)][1] < curves[(4, 2.0)][1]

    def test_fig12_paper_values(self):
        """Eq. 20 with U/V = 2/3: at N = 100^2, P = 20, m = 4 the model
        gives f = 1/(1 + 19*4*(2/3)/100) ~ 0.664."""
        curves = model_fig12(np.array([100.0]))
        assert curves[(20, 4.0)][0] == pytest.approx(
            1.0 / (1.0 + 19 * 4 * (2 / 3) / 100.0)
        )

    def test_fig13_separation(self):
        data = model_fig13(np.arange(2, 21))
        assert data["2d"].shape == data["3d"].shape == (19,)
        assert np.all(data["3d"] < data["2d"])
        assert np.all(np.diff(data["2d"]) < 0)
        assert np.all(np.diff(data["3d"]) < 0)

    def test_fig13_paper_endpoint(self):
        """At P = 20 the 3D model sits near 0.54 (the fig. 13 curve)."""
        data = model_fig13(np.array([20]))
        assert data["3d"][0] == pytest.approx(0.542, abs=0.01)
        assert data["2d"][0] == pytest.approx(0.826, abs=0.01)
