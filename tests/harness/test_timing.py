"""The §7 timing protocol."""

import pytest

from repro.harness import measure_node_speed, time_stepper


class FakeSim:
    """Step function with a controllable per-step cost."""

    def __init__(self, cost=0.0):
        self.cost = cost
        self.calls = []

    def step(self, n):
        self.calls.append(n)
        if self.cost:
            import time

            time.sleep(self.cost * n)


class TestTimeStepper:
    def test_warmup_then_repeats(self):
        sim = FakeSim()
        t = time_stepper(sim.step, steps=10, repeats=3, warmup=2)
        assert sim.calls == [2, 10, 10, 10]
        assert t.repeats == 3
        assert len(t.all_runs) == 3

    def test_best_of_repeats(self):
        sim = FakeSim()
        t = time_stepper(sim.step, steps=5, repeats=2, warmup=0)
        assert t.best == min(t.all_runs)
        assert t.seconds_per_step == t.best

    def test_measures_real_time(self):
        sim = FakeSim(cost=2e-3)
        t = time_stepper(sim.step, steps=5, repeats=1, warmup=0)
        assert t.seconds_per_step == pytest.approx(2e-3, rel=0.5)

    def test_no_warmup(self):
        sim = FakeSim()
        time_stepper(sim.step, steps=3, repeats=1, warmup=0)
        assert sim.calls == [3]  # exactly one timed run, no warmup


class TestNodeSpeed:
    def test_nodes_per_second(self):
        sim = FakeSim(cost=1e-3)
        speed = measure_node_speed(sim, n_nodes=1000, steps=5, repeats=1)
        assert speed == pytest.approx(1000 / 1e-3, rel=0.5)
