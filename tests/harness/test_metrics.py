"""Metrics and tabulation helpers."""

import pytest

from repro.harness import efficiency, format_series, format_table, speedup


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_efficiency(self):
        assert efficiency(10.0, 2.0, 10) == pytest.approx(0.5)

    def test_bad_tp(self):
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_bad_p(self):
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            ["P", "f"], [[4, 0.95], [16, 0.80]], title="fig 9"
        )
        lines = text.splitlines()
        assert lines[0] == "fig 9"
        assert "P" in lines[1] and "f" in lines[1]
        assert "0.95" in lines[3]
        # all rows equally wide
        assert len(set(len(l) for l in lines[1:])) == 1

    def test_series(self):
        s = format_series("2d", [1, 2], [0.5, 0.25])
        assert s == "2d: (1, 0.5)  (2, 0.25)"

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text
