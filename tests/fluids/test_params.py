"""FluidParams validation, stability numbers, LB mapping."""

import math

import pytest

from repro.fluids import FluidParams
from repro.fluids.params import LATTICE_CS


class TestValidation:
    def test_defaults_are_lattice_units(self):
        p = FluidParams()
        assert p.dx == p.dt == 1.0
        assert p.cs == pytest.approx(LATTICE_CS)

    def test_negative_viscosity(self):
        with pytest.raises(ValueError):
            FluidParams(nu=-0.1)

    def test_filter_eps_range(self):
        with pytest.raises(ValueError):
            FluidParams(filter_eps=0.2)
        FluidParams(filter_eps=1.0 / 16.0)  # boundary allowed

    def test_positive_scales(self):
        with pytest.raises(ValueError):
            FluidParams(dt=0.0)


class TestStability:
    def test_acoustic_cfl(self):
        p = FluidParams(cs=0.5, dt=0.4, dx=1.0)
        assert p.acoustic_cfl == pytest.approx(0.2)

    def test_check_stability_passes_lattice(self):
        FluidParams.lattice(2, nu=0.1).check_stability(2)

    def test_check_stability_acoustic_violation(self):
        p = FluidParams(cs=2.0, dt=1.0, dx=1.0, nu=0.01)
        with pytest.raises(ValueError, match="acoustic"):
            p.check_stability(2)

    def test_check_stability_viscous_violation(self):
        p = FluidParams(nu=0.5, cs=0.1)
        with pytest.raises(ValueError, match="viscous"):
            p.check_stability(2)

    def test_3d_is_stricter(self):
        p = FluidParams(nu=0.2, cs=LATTICE_CS)
        p.check_stability(2)
        with pytest.raises(ValueError):
            p.check_stability(3)


class TestLatticeMapping:
    def test_tau_relation(self):
        # nu = (tau - 1/2)/3  <=>  tau = 3 nu + 1/2
        p = FluidParams.lattice(2, nu=0.1)
        assert p.lb_tau == pytest.approx(0.8)

    def test_require_lattice_units_accepts(self):
        FluidParams.lattice(2, nu=0.05).require_lattice_units()

    def test_require_lattice_units_rejects(self):
        p = FluidParams(cs=0.5)
        with pytest.raises(ValueError, match="lattice"):
            p.require_lattice_units()

    def test_lattice_units_scaled_dx(self):
        # cs must track dx/dt
        p = FluidParams(dx=2.0, dt=1.0, cs=2.0 * LATTICE_CS)
        p.require_lattice_units()

    def test_lattice_constructor_gravity_dim(self):
        with pytest.raises(ValueError):
            FluidParams.lattice(3, gravity=(1e-5, 0.0))

    def test_with_(self):
        p = FluidParams.lattice(2, nu=0.1)
        q = p.with_(nu=0.2)
        assert q.nu == 0.2 and p.nu == 0.1
        assert q.cs == p.cs

    def test_acoustic_resolution_eq4(self):
        """Eq. 4: dx ~ cs * dt — lattice units satisfy it by design."""
        p = FluidParams.lattice(2)
        assert 0.1 < p.acoustic_cfl < 1.0
