"""Explicit finite differences: exactness, conservation, acoustics."""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FDMethod,
    FluidParams,
    acoustic_energy,
    channel_geometry,
    poiseuille_profile,
    standing_wave,
    total_mass,
)
from tests.conftest import channel_sim, rest_fields


class TestConstruction:
    def test_phase_structure_matches_paper(self):
        """§6: FD communicates velocities and density separately —
        two messages per step."""
        m = FDMethod(FluidParams.lattice(2, nu=0.1), 2)
        assert m.exchange_phases == (("u", "v"), ("rho",))
        assert len(m.exchange_phases) == 2

    def test_3d_fields(self):
        m = FDMethod(FluidParams.lattice(3, nu=0.05), 3)
        assert m.field_names == ("rho", "u", "v", "w")

    def test_rejects_unstable_params(self):
        with pytest.raises(ValueError):
            FDMethod(FluidParams(nu=0.4), 2)

    def test_rejects_gravity_dim_mismatch(self):
        with pytest.raises(ValueError):
            FDMethod(FluidParams.lattice(2, nu=0.1), 3)

    def test_bad_ndim(self):
        with pytest.raises(ValueError):
            FDMethod(FluidParams.lattice(2, nu=0.1), 1)


class TestPoiseuille:
    def test_exact_steady_profile(self):
        """Centered differences represent the parabolic profile exactly:
        the steady state matches to machine precision (walls on the
        solid nodes)."""
        ny, g, nu = 19, 1e-6, 0.1
        sim = channel_sim(FDMethod, shape=(8, ny), nu=nu, g=g)
        for _ in range(60):
            sim.step(200)
        u = sim.global_field("u")[4]
        y = np.arange(ny, dtype=float)
        exact = poiseuille_profile(y, ny - 1.0, g, nu)
        np.testing.assert_allclose(u, exact, atol=1e-12 * exact.max() + 1e-18)

    def test_no_transverse_flow(self):
        sim = channel_sim(FDMethod, shape=(8, 15))
        sim.step(500)
        assert np.abs(sim.global_field("v")).max() < 1e-12


class TestConservation:
    def _periodic_sim(self, filter_eps=0.0, seed=0):
        shape = (24, 20)
        params = FluidParams.lattice(2, nu=0.05, filter_eps=filter_eps)
        rng = np.random.default_rng(seed)
        fields = rest_fields(shape)
        fields["rho"] = 1.0 + 1e-3 * (rng.random(shape) - 0.5)
        d = Decomposition(shape, (1, 1), periodic=(True, True))
        return Simulation(FDMethod(params, 2), d, fields)

    def test_mass_conserved_exactly_periodic(self):
        """The centered flux divergence telescopes on a periodic domain:
        total mass is conserved to round-off."""
        sim = self._periodic_sim()
        m0 = total_mass(sim.global_field("rho"))
        sim.step(200)
        assert total_mass(sim.global_field("rho")) == pytest.approx(
            m0, rel=1e-13
        )

    def test_mass_conserved_with_filter(self):
        """The filter redistributes density but its stencil sums to
        zero, so mass stays conserved on a periodic domain."""
        sim = self._periodic_sim(filter_eps=0.02)
        m0 = total_mass(sim.global_field("rho"))
        sim.step(200)
        assert total_mass(sim.global_field("rho")) == pytest.approx(
            m0, rel=1e-12
        )

    def test_perturbation_decays(self):
        sim = self._periodic_sim()
        rho0 = sim.global_field("rho")
        sim.step(3000)
        rho1 = sim.global_field("rho")
        assert rho1.var() < 0.2 * rho0.var()


class TestAcoustics:
    def test_standing_wave_frequency(self):
        """A mode-1 standing wave oscillates at omega = cs k: after half
        a period the density pattern inverts (eq. 4's fast scale)."""
        nx, ny = 64, 8
        params = FluidParams.lattice(2, nu=1e-3)
        x = np.arange(nx, dtype=float) + 0.5
        rho_init, u_init = standing_wave(
            x, 0.0, float(nx), 1, 1e-4, 1.0, params.cs
        )
        fields = rest_fields((nx, ny))
        fields["rho"] = np.repeat(rho_init[:, None], ny, axis=1)
        d = Decomposition((nx, ny), (1, 1), periodic=(True, True))
        sim = Simulation(FDMethod(params, 2), d, fields)
        period = 2.0 * np.pi / (params.cs * 2.0 * np.pi / nx)
        sim.step(int(round(period / 2)))
        drho = sim.global_field("rho")[:, 4] - 1.0
        drho_init = rho_init - 1.0
        # half period: pattern inverted
        corr = np.dot(drho, drho_init) / np.dot(drho_init, drho_init)
        assert corr == pytest.approx(-1.0, abs=0.1)

    def test_acoustic_energy_decays_with_viscosity(self):
        nx, ny = 32, 8
        params = FluidParams.lattice(2, nu=0.1)
        x = np.arange(nx, dtype=float) + 0.5
        rho_init, _ = standing_wave(x, 0.0, float(nx), 1, 1e-3, 1.0, params.cs)
        fields = rest_fields((nx, ny))
        fields["rho"] = np.repeat(rho_init[:, None], ny, axis=1)
        d = Decomposition((nx, ny), (1, 1), periodic=(True, True))
        sim = Simulation(FDMethod(params, 2), d, fields)

        def energy():
            return acoustic_energy(
                sim.global_field("rho"),
                [sim.global_field("u"), sim.global_field("v")],
                1.0,
                params.cs,
            )

        e0 = energy()
        sim.step(400)
        assert energy() < 0.5 * e0


class TestFD3D:
    def test_3d_channel_runs_and_is_finite(self):
        shape = (8, 12, 12)
        sim = channel_sim(FDMethod, shape=shape, nu=0.08, g=1e-6)
        sim.step(100)
        for name in ("rho", "u", "v", "w"):
            assert np.isfinite(sim.global_field(name)).all()
        assert sim.global_field("u").max() > 0

    def test_3d_duct_profile_symmetry(self):
        shape = (6, 13, 13)
        sim = channel_sim(FDMethod, shape=shape, nu=0.08, g=1e-6)
        sim.step(800)
        u = sim.global_field("u")[3]
        np.testing.assert_allclose(u, u[::-1, :], atol=1e-12)
        np.testing.assert_allclose(u, u[:, ::-1], atol=1e-12)
        assert u[6, 6] == u.max()
