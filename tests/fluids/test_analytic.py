"""Analytic reference solutions."""

import numpy as np
import pytest

from repro.fluids import (
    acoustic_frequency,
    duct_profile,
    poiseuille_max_velocity,
    poiseuille_profile,
    standing_wave,
)


class TestPoiseuille:
    def test_no_slip_at_walls(self):
        y = np.array([0.0, 10.0])
        np.testing.assert_allclose(
            poiseuille_profile(y, 10.0, 1e-5, 0.1), 0.0
        )

    def test_max_at_center(self):
        y = np.linspace(0, 10, 101)
        u = poiseuille_profile(y, 10.0, 1e-5, 0.1)
        assert u.argmax() == 50
        assert u.max() == pytest.approx(
            poiseuille_max_velocity(10.0, 1e-5, 0.1)
        )

    def test_max_velocity_formula(self):
        # u_max = g H^2 / (8 nu)
        assert poiseuille_max_velocity(4.0, 0.02, 0.1) == pytest.approx(
            0.02 * 16 / 0.8
        )

    def test_scaling_with_viscosity(self):
        y = np.array([5.0])
        u1 = poiseuille_profile(y, 10.0, 1e-5, 0.1)[0]
        u2 = poiseuille_profile(y, 10.0, 1e-5, 0.2)[0]
        assert u1 == pytest.approx(2 * u2)


class TestDuct:
    def test_no_slip_on_all_walls(self):
        y = np.linspace(0, 8, 17)[:, None]
        z = np.linspace(0, 6, 13)[None, :]
        u = duct_profile(y, z, 8.0, 6.0, 1e-5, 0.1)
        np.testing.assert_allclose(u[0], 0.0, atol=1e-10)
        np.testing.assert_allclose(u[-1], 0.0, atol=1e-10)
        np.testing.assert_allclose(u[:, 0], 0.0, atol=1e-6)
        np.testing.assert_allclose(u[:, -1], 0.0, atol=1e-6)

    def test_positive_interior(self):
        y = np.linspace(0.5, 7.5, 8)[:, None]
        z = np.linspace(0.5, 5.5, 6)[None, :]
        u = duct_profile(y, z, 8.0, 6.0, 1e-5, 0.1)
        assert (u > 0).all()

    def test_wide_duct_approaches_plane_channel(self):
        """lz -> infinity: mid-plane profile tends to plane Poiseuille."""
        ly = 10.0
        y = np.linspace(0, ly, 21)
        u = duct_profile(y, np.full_like(y, 100.0), ly, 200.0, 1e-5, 0.1,
                        terms=201)
        plane = poiseuille_profile(y, ly, 1e-5, 0.1)
        np.testing.assert_allclose(u, plane, rtol=2e-3, atol=1e-10)

    def test_symmetry(self):
        y = np.linspace(0, 8, 9)[:, None]
        z = np.linspace(0, 6, 7)[None, :]
        u = duct_profile(y, z, 8.0, 6.0, 1e-5, 0.1)
        np.testing.assert_allclose(u, u[::-1, :], atol=1e-12)
        np.testing.assert_allclose(u, u[:, ::-1], atol=1e-12)


class TestStandingWave:
    def test_initial_condition(self):
        x = np.linspace(0, 32, 33)
        rho, u = standing_wave(x, 0.0, 32.0, 1, 1e-3, 1.0, 0.5)
        np.testing.assert_allclose(u, 0.0, atol=1e-15)
        assert rho[0] == pytest.approx(1.001)

    def test_quarter_period_all_kinetic(self):
        x = np.linspace(0, 32, 33)
        omega = acoustic_frequency(32.0, 1, 0.5)
        t = (np.pi / 2) / omega
        rho, u = standing_wave(x, t, 32.0, 1, 1e-3, 1.0, 0.5)
        np.testing.assert_allclose(rho, 1.0, atol=1e-12)
        assert np.abs(u).max() == pytest.approx(1e-3 * 0.5)

    def test_frequency(self):
        # omega = cs k
        assert acoustic_frequency(32.0, 2, 0.5) == pytest.approx(
            0.5 * 2 * np.pi * 2 / 32.0
        )

    def test_mean_density_is_rho0(self):
        x = np.arange(64) + 0.5
        rho, _ = standing_wave(x, 0.3, 64.0, 1, 1e-3, 1.0, 0.5)
        assert rho.mean() == pytest.approx(1.0, abs=1e-12)
