"""Flue-pipe and channel geometry builders (figs. 1-2)."""

import numpy as np
import pytest

from repro.core import Decomposition
from repro.fluids import channel_geometry, flue_pipe


class TestChannelGeometry:
    def test_2d_walls(self):
        solid = channel_geometry((16, 12))
        assert solid[:, 0].all() and solid[:, -1].all()
        assert not solid[:, 1:-1].any()

    def test_wall_thickness(self):
        solid = channel_geometry((16, 12), wall_nodes=2)
        assert solid[:, :2].all() and solid[:, -2:].all()
        assert not solid[:, 2:-2].any()

    def test_3d_duct(self):
        solid = channel_geometry((8, 10, 10))
        assert solid[:, 0, :].all() and solid[:, :, 0].all()
        assert solid[:, -1, :].all() and solid[:, :, -1].all()
        assert not solid[:, 1:-1, 1:-1].any()


class TestFluePipe:
    def test_basic_structure(self):
        setup = flue_pipe((128, 80))
        solid = setup.solid
        assert solid.shape == (128, 80)
        # enclosing walls present except at the openings
        assert solid[:, 0].all() and solid[:, -1].all()
        # jet inlet carved out of the left wall
        ib = setup.inlet.box
        assert not solid[ib.lo[0]:ib.hi[0], ib.lo[1]:ib.hi[1]].any()
        # outlet carved out of the right wall (basic variant)
        ob = setup.outlet.box
        assert ob.hi[0] == 128
        assert not solid[ob.lo[0]:ob.hi[0], ob.lo[1]:ob.hi[1]].any()

    def test_interior_mostly_fluid(self):
        setup = flue_pipe((128, 80))
        frac_solid = setup.solid.mean()
        assert 0.02 < frac_solid < 0.5

    def test_jet_ramp(self):
        setup = flue_pipe((128, 80), jet_speed=0.1, ramp_steps=50)
        v0 = setup.inlet.velocity_at(0)
        v_mid = setup.inlet.velocity_at(24)
        v_full = setup.inlet.velocity_at(200)
        assert 0 < v0[0] < v_mid[0] < v_full[0] == pytest.approx(0.1)
        assert v_full[1] == 0.0

    def test_channel_variant_outlet_on_top(self):
        setup = flue_pipe((128, 80), variant="channel")
        ob = setup.outlet.box
        assert ob.hi[1] == 80  # top wall

    def test_channel_variant_has_inactive_subregions(self):
        """Fig. 2: whole subregions of a coarse decomposition are solid
        walls and are not assigned to workstations (paper: 15 of 24)."""
        setup = flue_pipe((192, 128), variant="channel")
        d = Decomposition((192, 128), (6, 4), solid=setup.solid)
        assert d.n_active < d.n_blocks
        assert d.active_fraction < 1.0

    def test_basic_variant_fully_active(self):
        setup = flue_pipe((192, 128))
        d = Decomposition((192, 128), (5, 4), solid=setup.solid)
        assert d.n_active == 20

    def test_mouth_probe_in_fluid(self):
        setup = flue_pipe((128, 80))
        pb = setup.mouth_probe
        assert not setup.solid[pb.lo[0]:pb.hi[0], pb.lo[1]:pb.hi[1]].all()

    def test_too_coarse_grid_rejected(self):
        with pytest.raises(ValueError):
            flue_pipe((32, 20))

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            flue_pipe((128, 80), variant="bass")

    def test_paper_resolution_masks(self):
        """The paper's 800 x 500 production grid builds cleanly."""
        setup = flue_pipe((800, 500))
        assert setup.solid.shape == (800, 500)
        d = Decomposition((800, 500), (5, 4), solid=setup.solid)
        assert d.n_active == 20


class TestCylinderChannel:
    def test_walls_and_cylinder(self):
        from repro.fluids import cylinder_channel

        solid = cylinder_channel((80, 40))
        assert solid[:, 0].all() and solid[:, -1].all()
        # cylinder present at the requested center
        assert solid[20, 20]
        # and round-ish: columns far from the center are clear
        assert not solid[60, 20]

    def test_radius_scaling(self):
        from repro.fluids import cylinder_channel

        small = cylinder_channel((80, 40), radius_frac=0.05)
        large = cylinder_channel((80, 40), radius_frac=0.2)
        assert large.sum() > small.sum()

    def test_under_resolved_rejected(self):
        import pytest

        from repro.fluids import cylinder_channel

        with pytest.raises(ValueError, match="radius"):
            cylinder_channel((30, 16), radius_frac=0.05)

    def test_center_placement(self):
        from repro.fluids import cylinder_channel

        solid = cylinder_channel((80, 40), center_frac=(0.75, 0.5))
        assert solid[60, 20]
        assert not solid[20, 20]
