"""The fourth-order numerical-viscosity filter (§6)."""

import numpy as np
import pytest

from repro.core import Decomposition, make_subregions
from repro.fluids import FourthOrderFilter


def _sub(field, solid=None, pad=3):
    shape = field.shape
    d = Decomposition(shape, (1, 1))
    subs = make_subregions(d, pad, {"a": field}, solid)
    return subs[0]


class TestConstruction:
    def test_eps_range(self):
        with pytest.raises(ValueError):
            FourthOrderFilter(0.1)
        with pytest.raises(ValueError):
            FourthOrderFilter(-0.01)

    def test_disabled(self):
        f = FourthOrderFilter(0.0)
        assert not f.enabled

    def test_reach_is_two(self):
        assert FourthOrderFilter.reach == 2


class TestApplication:
    def test_noop_when_disabled(self):
        rng = np.random.default_rng(0)
        a = rng.random((16, 12))
        sub = _sub(a)
        filt = FourthOrderFilter(0.0)
        filt.build_mask(sub)
        filt.apply(sub, ["a"], sub.interior)
        np.testing.assert_array_equal(sub.interior_view("a"), a)

    def test_preserves_linear_fields(self):
        """Away from domain edges (whose replicated ghosts flatten the
        ramp) a linear field is in the filter's null space."""
        x = np.arange(16)[:, None] * np.ones((1, 12))
        sub = _sub(2.0 * x + 1.0)
        filt = FourthOrderFilter(0.02)
        filt.build_mask(sub)
        before = sub.interior_view("a").copy()
        filt.apply(sub, ["a"], sub.interior)
        np.testing.assert_allclose(
            sub.interior_view("a")[2:-2, 2:-2], before[2:-2, 2:-2],
            atol=1e-12,
        )

    def test_damps_checkerboard(self):
        """The filter exists to kill node-to-node oscillations."""
        i, j = np.indices((16, 16))
        a = 1.0 + 0.1 * (-1.0) ** (i + j)
        sub = _sub(a)
        filt = FourthOrderFilter(1.0 / 32.0)
        filt.build_mask(sub)
        # interior of the interior: away from the replicated edges
        amp0 = np.abs(sub.interior_view("a")[4:-4, 4:-4] - 1.0).max()
        filt.apply(sub, ["a"], sub.interior)
        amp1 = np.abs(sub.interior_view("a")[4:-4, 4:-4] - 1.0).max()
        assert amp1 < amp0
        # checkerboard eigenvalue: correction = eps*32*amp per node
        assert amp1 == pytest.approx(0.1 * (1 - 32.0 / 32.0), abs=1e-12)

    def test_stable_at_max_eps(self):
        rng = np.random.default_rng(1)
        a = 1.0 + 0.1 * rng.random((16, 16))
        sub = _sub(a)
        filt = FourthOrderFilter(1.0 / 16.0)
        filt.build_mask(sub)
        for _ in range(50):
            filt.apply(sub, ["a"], sub.interior)
        v = sub.interior_view("a")
        assert np.isfinite(v).all()
        assert v.max() <= 1.1 + 1e-9 and v.min() >= 1.0 - 1e-9

    def test_masked_near_solid(self):
        """Nodes whose stencil touches a wall are left unfiltered, so
        wall values stay pinned and nothing reads across the wall."""
        rng = np.random.default_rng(2)
        a = rng.random((16, 12))
        solid = np.zeros((16, 12), dtype=bool)
        solid[8, :] = True
        sub = _sub(a, solid)
        filt = FourthOrderFilter(0.02)
        filt.build_mask(sub)
        before = sub.fields["a"].copy()
        filt.apply(sub, ["a"], sub.interior)
        after = sub.fields["a"]
        p = sub.pad
        # rows within reach 2 of the wall row (global rows 6..10) unchanged
        np.testing.assert_array_equal(
            after[p + 6 : p + 11, p : p + 12],
            before[p + 6 : p + 11, p : p + 12],
        )
        # a far row did change
        assert not np.array_equal(
            after[p + 2, p : p + 12], before[p + 2, p : p + 12]
        )

    def test_multiple_fields_filtered_independently(self):
        rng = np.random.default_rng(3)
        a, b = rng.random((14, 14)), rng.random((14, 14))
        d = Decomposition((14, 14), (1, 1))
        sub = make_subregions(d, 3, {"a": a, "b": b})[0]
        filt = FourthOrderFilter(0.02)
        filt.build_mask(sub)
        filt.apply(sub, ["a", "b"], sub.interior)
        sub2 = make_subregions(d, 3, {"a": a, "b": b})[0]
        filt.build_mask(sub2)
        filt.apply(sub2, ["b"], sub2.interior)
        np.testing.assert_array_equal(sub.fields["b"], sub2.fields["b"])

    def test_3d_filtering(self):
        rng = np.random.default_rng(4)
        a = rng.random((10, 10, 10))
        d = Decomposition((10, 10, 10), (1, 1, 1))
        sub = make_subregions(d, 3, {"a": a})[0]
        filt = FourthOrderFilter(0.02)
        filt.build_mask(sub)
        filt.apply(sub, ["a"], sub.interior)
        assert np.isfinite(sub.fields["a"]).all()
