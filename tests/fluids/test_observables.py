"""Flow diagnostics: vorticity (the fig. 1 quantity), divergence, energies."""

import numpy as np
import pytest

from repro.fluids import (
    acoustic_energy,
    divergence,
    kinetic_energy,
    total_mass,
    total_momentum,
    vorticity_2d,
    vorticity_3d,
)


def _grid(n=16):
    x = (np.arange(n) - n / 2.0)[:, None] * np.ones((1, n))
    y = np.ones((n, 1)) * (np.arange(n) - n / 2.0)[None, :]
    return x, y


class TestVorticity:
    def test_solid_rotation(self):
        """u = -omega y, v = omega x: vorticity = 2 omega everywhere."""
        x, y = _grid()
        omega = 0.3
        w = vorticity_2d(-omega * y, omega * x)
        np.testing.assert_allclose(w, 2 * omega, rtol=1e-12)

    def test_shear_flow(self):
        x, y = _grid()
        w = vorticity_2d(0.5 * y, np.zeros_like(y))
        np.testing.assert_allclose(w, -0.5, rtol=1e-12)

    def test_irrotational_flow(self):
        x, y = _grid()
        # potential flow u = x, v = -y
        w = vorticity_2d(x, -y)
        np.testing.assert_allclose(w, 0.0, atol=1e-12)

    def test_dx_scaling(self):
        x, y = _grid()
        w1 = vorticity_2d(-y, x, dx=1.0)
        w2 = vorticity_2d(-y, x, dx=2.0)
        np.testing.assert_allclose(w1, 2 * w2)

    def test_3d_solid_rotation_about_z(self):
        n = 10
        idx = np.indices((n, n, n)).astype(float) - n / 2
        x, y, z = idx
        u, v, w = -y, x, np.zeros_like(x)
        vort = vorticity_3d(u, v, w)
        np.testing.assert_allclose(vort[2], 2.0, rtol=1e-12)
        np.testing.assert_allclose(vort[0], 0.0, atol=1e-12)
        np.testing.assert_allclose(vort[1], 0.0, atol=1e-12)


class TestDivergence:
    def test_uniform_flow(self):
        np.testing.assert_allclose(
            divergence([np.ones((8, 8)), np.ones((8, 8))]), 0.0, atol=1e-14
        )

    def test_expansion(self):
        x, y = _grid()
        np.testing.assert_allclose(divergence([x, y]), 2.0, rtol=1e-12)


class TestIntegrals:
    def test_total_mass(self):
        rho = np.full((4, 5), 2.0)
        assert total_mass(rho) == pytest.approx(40.0)
        assert total_mass(rho, dx=0.5) == pytest.approx(10.0)

    def test_total_momentum(self):
        rho = np.full((4, 4), 2.0)
        u = np.full((4, 4), 0.5)
        v = np.zeros((4, 4))
        np.testing.assert_allclose(total_momentum(rho, [u, v]), [16.0, 0.0])

    def test_kinetic_energy(self):
        rho = np.ones((4, 4))
        u = np.full((4, 4), 2.0)
        assert kinetic_energy(rho, [u, np.zeros((4, 4))]) == pytest.approx(
            0.5 * 16 * 4.0
        )

    def test_acoustic_energy_zero_at_rest(self):
        rho = np.ones((6, 6))
        vels = [np.zeros((6, 6))] * 2
        assert acoustic_energy(rho, vels, 1.0, 0.5) == 0.0

    def test_acoustic_energy_positive(self):
        rho = np.ones((6, 6))
        rho[2, 2] = 1.01
        vels = [np.zeros((6, 6))] * 2
        assert acoustic_energy(rho, vels, 1.0, 0.5) > 0
