"""Flow diagnostics: vorticity (the fig. 1 quantity), divergence, energies."""

import numpy as np
import pytest

from repro.fluids import (
    acoustic_energy,
    divergence,
    kinetic_energy,
    primary_vortex,
    spectral_peak,
    streamfunction_2d,
    taylor_green,
    total_mass,
    total_momentum,
    vortex_centers,
    vorticity_2d,
    vorticity_3d,
)


def _grid(n=16):
    x = (np.arange(n) - n / 2.0)[:, None] * np.ones((1, n))
    y = np.ones((n, 1)) * (np.arange(n) - n / 2.0)[None, :]
    return x, y


class TestVorticity:
    def test_solid_rotation(self):
        """u = -omega y, v = omega x: vorticity = 2 omega everywhere."""
        x, y = _grid()
        omega = 0.3
        w = vorticity_2d(-omega * y, omega * x)
        np.testing.assert_allclose(w, 2 * omega, rtol=1e-12)

    def test_shear_flow(self):
        x, y = _grid()
        w = vorticity_2d(0.5 * y, np.zeros_like(y))
        np.testing.assert_allclose(w, -0.5, rtol=1e-12)

    def test_irrotational_flow(self):
        x, y = _grid()
        # potential flow u = x, v = -y
        w = vorticity_2d(x, -y)
        np.testing.assert_allclose(w, 0.0, atol=1e-12)

    def test_dx_scaling(self):
        x, y = _grid()
        w1 = vorticity_2d(-y, x, dx=1.0)
        w2 = vorticity_2d(-y, x, dx=2.0)
        np.testing.assert_allclose(w1, 2 * w2)

    def test_3d_solid_rotation_about_z(self):
        n = 10
        idx = np.indices((n, n, n)).astype(float) - n / 2
        x, y, z = idx
        u, v, w = -y, x, np.zeros_like(x)
        vort = vorticity_3d(u, v, w)
        np.testing.assert_allclose(vort[2], 2.0, rtol=1e-12)
        np.testing.assert_allclose(vort[0], 0.0, atol=1e-12)
        np.testing.assert_allclose(vort[1], 0.0, atol=1e-12)


class TestDivergence:
    def test_uniform_flow(self):
        np.testing.assert_allclose(
            divergence([np.ones((8, 8)), np.ones((8, 8))]), 0.0, atol=1e-14
        )

    def test_expansion(self):
        x, y = _grid()
        np.testing.assert_allclose(divergence([x, y]), 2.0, rtol=1e-12)


class TestIntegrals:
    def test_total_mass(self):
        rho = np.full((4, 5), 2.0)
        assert total_mass(rho) == pytest.approx(40.0)
        assert total_mass(rho, dx=0.5) == pytest.approx(10.0)

    def test_total_momentum(self):
        rho = np.full((4, 4), 2.0)
        u = np.full((4, 4), 0.5)
        v = np.zeros((4, 4))
        np.testing.assert_allclose(total_momentum(rho, [u, v]), [16.0, 0.0])

    def test_kinetic_energy(self):
        rho = np.ones((4, 4))
        u = np.full((4, 4), 2.0)
        assert kinetic_energy(rho, [u, np.zeros((4, 4))]) == pytest.approx(
            0.5 * 16 * 4.0
        )

    def test_acoustic_energy_zero_at_rest(self):
        rho = np.ones((6, 6))
        vels = [np.zeros((6, 6))] * 2
        assert acoustic_energy(rho, vels, 1.0, 0.5) == 0.0

    def test_acoustic_energy_positive(self):
        rho = np.ones((6, 6))
        rho[2, 2] = 1.01
        vels = [np.zeros((6, 6))] * 2
        assert acoustic_energy(rho, vels, 1.0, 0.5) > 0


def _taylor_green_offnode(n=256, xoff=63.7, yoff=64.3, u0=0.05):
    """Taylor-Green sample whose four vortex centers are interior and
    deliberately off-node: centers at x in {xoff, xoff + n/2} and
    y in {yoff, yoff + n/2} (node coordinates)."""
    L = float(n)
    x = (np.arange(n)[:, None] - xoff)
    y = (np.arange(n)[None, :] - yoff)
    u, v = taylor_green(x, y, 0.0, L, u0, 0.01)
    centers = [
        (xoff + mi * n / 2.0, yoff + mj * n / 2.0)
        for mi in range(2)
        for mj in range(2)
    ]
    return u, v, centers


class TestVortexCenters:
    def test_taylor_green_centers_to_1e6(self):
        """The satellite accuracy bar: known centers to 1e-6 of the
        domain on a synthetic Taylor-Green field (no simulation)."""
        n = 256
        u, v, exact = _taylor_green_offnode(n)
        found = vortex_centers(u, v, n=4)
        assert found.shape == (4, 3)
        for ex, ey in exact:
            d = np.min(
                np.hypot(found[:, 0] - ex, found[:, 1] - ey)
            )
            assert d / n < 1e-6, f"center ({ex},{ey}) off by {d / n}"

    def test_primary_vortex_matches_strongest(self):
        u, v, exact = _taylor_green_offnode(128, 31.6, 32.4)
        x, y = primary_vortex(u, v)
        d = min(np.hypot(x - ex, y - ey) for ex, ey in exact)
        assert d < 1e-3

    def test_dx_scales_coordinates(self):
        u, v, _ = _taylor_green_offnode(64, 15.5, 16.5)
        a = vortex_centers(u, v, n=1)
        b = vortex_centers(u, v, dx=0.5, n=1)
        np.testing.assert_allclose(b[:, :2], a[:, :2] * 0.5)

    def test_no_vortex_in_uniform_flow(self):
        u = np.ones((32, 32))
        v = np.zeros((32, 32))
        assert vortex_centers(u, v).shape[0] == 0
        with pytest.raises(ValueError, match="no vortex"):
            primary_vortex(u, v)

    def test_mask_excludes_solid_neighbourhood(self):
        u, v, exact = _taylor_green_offnode(128, 31.6, 32.4)
        mask = np.ones_like(u, dtype=bool)
        # wall out the quadrant holding the (31.6, 32.4) center
        mask[:64, :64] = False
        found = vortex_centers(u, v, n=4, mask=mask)
        assert found.shape[0] > 0
        for row in found:
            assert not (row[0] < 64 and row[1] < 64)

    def test_streamfunction_recovers_velocity(self):
        u, v, _ = _taylor_green_offnode(128, 31.6, 32.4)
        psi = streamfunction_2d(u, v)
        du = np.gradient(psi, axis=1)
        np.testing.assert_allclose(du[:, 2:-2], u[:, 2:-2], atol=2e-4)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="2D"):
            vortex_centers(np.zeros((4, 4, 4)), np.zeros((4, 4, 4)))


class TestSpectralPeak:
    def test_pure_sine(self):
        """The satellite accuracy bar: synthesized sine, no simulation."""
        f0 = 0.0437
        t = np.arange(2048)
        sig = 0.7 * np.sin(2 * np.pi * f0 * t + 0.3)
        f, a = spectral_peak(sig)
        assert f == pytest.approx(f0, rel=1e-3)
        # Hann scalloping loses up to ~15% of amplitude off-bin
        assert a == pytest.approx(0.7, rel=0.2)

    def test_dt_scaling(self):
        f0 = 0.031
        t = np.arange(1024)
        sig = np.sin(2 * np.pi * f0 * t)
        f_steps, _ = spectral_peak(sig)
        f_time, _ = spectral_peak(sig, dt=2.0)
        assert f_time == pytest.approx(f_steps / 2.0, rel=1e-9)

    def test_survives_linear_drift(self):
        f0 = 0.02
        t = np.arange(1024)
        sig = np.sin(2 * np.pi * f0 * t) + 0.01 * t + 5.0
        f, _ = spectral_peak(sig)
        assert f == pytest.approx(f0, rel=1e-2)

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            spectral_peak(np.ones(3))

    def test_band_restricts_search(self):
        t = np.arange(4096)
        # strong low line + weak high line
        sig = np.sin(2 * np.pi * 0.01 * t) + 0.1 * np.sin(
            2 * np.pi * 0.11 * t
        )
        f_all, _ = spectral_peak(sig)
        assert f_all == pytest.approx(0.01, rel=1e-2)
        f_band, _ = spectral_peak(sig, band=(0.05, 0.2))
        assert f_band == pytest.approx(0.11, rel=1e-2)

    def test_empty_band_raises(self):
        sig = np.sin(np.arange(256) * 0.3)
        with pytest.raises(ValueError, match="band"):
            spectral_peak(sig, band=(0.6, 0.7))  # beyond Nyquist
