"""Stencil algebra on padded arrays."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fluids._kernels import (
    central_diff,
    dilate_star,
    fourth_diff_sum,
    laplacian,
    region_shape,
    second_diff,
    shift_region,
)


def _grid(nx=12, ny=10):
    x = np.arange(nx)[:, None] * np.ones((1, ny))
    y = np.ones((nx, 1)) * np.arange(ny)[None, :]
    return x, y


REGION = (slice(2, 10), slice(2, 8))


class TestShiftRegion:
    def test_shift(self):
        assert shift_region(REGION, 0, 1) == (slice(3, 11), slice(2, 8))
        assert shift_region(REGION, 1, -2) == (slice(2, 10), slice(0, 6))

    def test_rejects_open_slices(self):
        with pytest.raises(ValueError):
            shift_region((slice(None), slice(1, 2)), 0, 1)
        with pytest.raises(ValueError):
            shift_region((slice(2), slice(1, 2)), 0, 1)
        with pytest.raises(ValueError):
            shift_region((slice(1, None), slice(1, 2)), 0, 1)

    def test_rejects_strided_slices(self):
        with pytest.raises(ValueError):
            shift_region((slice(0, 8, 2), slice(1, 2)), 0, 1)
        with pytest.raises(ValueError):
            shift_region((slice(8, 0, -1), slice(1, 2)), 0, 1)

    def test_untouched_axes_not_validated(self):
        # only the shifted axis is inspected, matching the seed behaviour
        got = shift_region((slice(1, 4), slice(None)), 0, 2)
        assert got == (slice(3, 6), slice(None))


class TestRegionShape:
    def test_shape(self):
        assert region_shape(REGION) == (8, 6)
        assert region_shape((slice(0, 1),)) == (1,)

    def test_matches_indexing(self):
        a = np.zeros((12, 10))
        assert region_shape(REGION) == a[REGION].shape

    def test_rejects_open_slices(self):
        with pytest.raises(ValueError):
            region_shape((slice(None), slice(1, 2)))
        with pytest.raises(ValueError):
            region_shape((slice(1, None), slice(1, 2)))
        with pytest.raises(ValueError):
            region_shape((slice(2), slice(1, 2)))

    def test_rejects_strided_slices(self):
        with pytest.raises(ValueError):
            region_shape((slice(0, 8, 2),))


class TestOutVariants:
    """``out=``/``scratch=`` buffered calls match allocating calls bitwise."""

    def _field(self):
        rng = np.random.default_rng(7)
        return rng.random((12, 10))

    def _check(self, kernel, *args, scratch=False):
        a = self._field()
        plain = kernel(a, REGION, *args)
        out = np.full(region_shape(REGION), np.nan)
        kwargs = {"out": out}
        if scratch:
            kwargs["scratch"] = np.full_like(out, np.nan)
        ret = kernel(a, REGION, *args, **kwargs)
        assert ret is out  # writes in place, returns the buffer
        assert np.array_equal(plain, out)

    def test_central_diff(self):
        self._check(central_diff, 0, 0.7)
        self._check(central_diff, 1, 0.7)

    def test_second_diff(self):
        self._check(second_diff, 0, 0.7)
        self._check(second_diff, 1, 0.7)

    def test_laplacian(self):
        self._check(laplacian, 0.7, scratch=True)

    def test_fourth_diff_sum(self):
        self._check(fourth_diff_sum, scratch=True)

    def test_out_only_without_scratch(self):
        # scratch is optional independently of out
        a = self._field()
        out = np.empty(region_shape(REGION))
        assert np.array_equal(
            laplacian(a, REGION, 1.0, out=out), laplacian(a, REGION, 1.0)
        )


class TestDerivatives:
    def test_central_diff_linear_exact(self):
        x, y = _grid()
        np.testing.assert_allclose(
            central_diff(3.0 * x + y, REGION, 0, 1.0), 3.0
        )
        np.testing.assert_allclose(
            central_diff(3.0 * x + y, REGION, 1, 1.0), 1.0
        )

    def test_central_diff_quadratic_exact(self):
        # centered differences are exact on quadratics
        x, _ = _grid()
        got = central_diff(x * x, REGION, 0, 1.0)
        np.testing.assert_allclose(got, 2.0 * x[REGION])

    def test_central_diff_dx_scaling(self):
        x, _ = _grid()
        got = central_diff(x, REGION, 0, 0.5)
        np.testing.assert_allclose(got, 2.0)

    def test_second_diff_quadratic(self):
        x, _ = _grid()
        np.testing.assert_allclose(second_diff(x * x, REGION, 0, 1.0), 2.0)

    def test_laplacian_harmonic_is_zero(self):
        x, y = _grid()
        np.testing.assert_allclose(
            laplacian(x * x - y * y, REGION, 1.0), 0.0, atol=1e-12
        )

    def test_laplacian_parabola(self):
        x, y = _grid()
        np.testing.assert_allclose(
            laplacian(x * x + y * y, REGION, 1.0), 4.0
        )


class TestFourthDiff:
    def test_annihilates_cubics(self):
        x, y = _grid(14, 14)
        r = (slice(2, 12), slice(2, 12))
        f = x**3 - 2 * y**3 + x * x - y
        np.testing.assert_allclose(fourth_diff_sum(f, r), 0.0, atol=1e-9)

    def test_quartic_value(self):
        x, _ = _grid(14, 14)
        r = (slice(2, 12), slice(2, 12))
        # 4th undivided difference of x^4 is 4! = 24
        np.testing.assert_allclose(fourth_diff_sum(x**4, r), 24.0)

    def test_checkerboard_amplitude(self):
        # (-1)^(i+j): per axis the 4th difference is 16 * value
        i, j = np.indices((12, 12))
        f = (-1.0) ** (i + j)
        r = (slice(2, 10), slice(2, 10))
        np.testing.assert_allclose(fourth_diff_sum(f, r), 32.0 * f[r])


class TestDilateStar:
    def test_single_point(self):
        m = np.zeros((9, 9), dtype=bool)
        m[4, 4] = True
        d = dilate_star(m, 2)
        assert d[4, 4] and d[2, 4] and d[4, 6] and d[3, 3]
        assert d.sum() == 25  # a reach-2 dilation applied per axis: 5x5 box

    def test_reach_one(self):
        m = np.zeros((7, 7), dtype=bool)
        m[3, 3] = True
        d = dilate_star(m, 1)
        assert d.sum() == 9  # 3x3 box (axis-sequential dilation)

    def test_edge_clipping(self):
        m = np.zeros((6, 6), dtype=bool)
        m[0, 0] = True
        d = dilate_star(m, 2)
        assert d[0, 2] and d[2, 0] and not d[0, 3]

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_superset_and_monotone(self, seed):
        rng = np.random.default_rng(seed)
        m = rng.random((10, 8)) < 0.2
        d1 = dilate_star(m, 1)
        d2 = dilate_star(m, 2)
        assert (d1 | m).sum() == d1.sum()  # dilation contains original
        assert (d2 | d1).sum() == d2.sum()  # monotone in reach
