"""Probes and tone analysis."""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FluidParams,
    GlobalBox,
    LBMethod,
    Probe,
    acoustic_frequency,
    dominant_frequency,
    spectrum,
    standing_wave,
)


class TestSpectrum:
    def test_pure_tone(self):
        t = np.arange(512)
        x = np.sin(2 * np.pi * 0.1 * t)
        f = dominant_frequency(x)
        assert f == pytest.approx(0.1, abs=2e-3)

    def test_tone_with_offset_and_drift(self):
        t = np.arange(512)
        x = 5.0 + 0.01 * t + 0.1 * np.sin(2 * np.pi * 0.07 * t)
        assert dominant_frequency(x) == pytest.approx(0.07, abs=2e-3)

    def test_off_bin_frequency_interpolated(self):
        t = np.arange(256)
        f0 = 0.0837
        x = np.sin(2 * np.pi * f0 * t)
        assert dominant_frequency(x) == pytest.approx(f0, abs=2e-3)

    def test_dt_scaling(self):
        t = np.arange(512)
        x = np.sin(2 * np.pi * 0.1 * t)
        # sampling every 5 steps: same signal, frequency in 1/steps
        assert dominant_frequency(x, dt=5.0) == pytest.approx(
            0.1 / 5.0, abs=1e-3
        )

    def test_strongest_of_two(self):
        t = np.arange(1024)
        x = np.sin(2 * np.pi * 0.05 * t) + 0.2 * np.sin(2 * np.pi * 0.2 * t)
        assert dominant_frequency(x) == pytest.approx(0.05, abs=2e-3)

    def test_short_signal_rejected(self):
        with pytest.raises(ValueError):
            spectrum(np.ones(3))

    def test_spectrum_parseval_ish(self):
        t = np.arange(256)
        x = np.sin(2 * np.pi * 0.125 * t)
        freq, amp = spectrum(x)
        k = np.argmax(amp)
        assert freq[k] == pytest.approx(0.125, abs=0.005)
        assert amp[k] == pytest.approx(1.0, rel=0.1)


class TestProbe:
    def _wave_sim(self, nx=48):
        ny = 6
        params = FluidParams.lattice(2, nu=1e-3)
        x = np.arange(nx, dtype=float) + 0.5
        rho, _ = standing_wave(x, 0.0, float(nx), 1, 1e-4, 1.0, params.cs)
        fields = {
            "rho": np.repeat(rho[:, None], ny, axis=1),
            "u": np.zeros((nx, ny)),
            "v": np.zeros((nx, ny)),
        }
        d = Decomposition((nx, ny), (1, 1), periodic=(True, True))
        return Simulation(LBMethod(params, 2), d, fields), params

    def test_records_steps_and_values(self):
        sim, _ = self._wave_sim()
        probe = Probe(GlobalBox((0, 2), (2, 4)))
        probe.run(sim, steps=20, every=5)
        assert probe.steps == [5, 10, 15, 20]
        assert len(probe.values) == 4
        assert probe.sample_period == 5

    def test_nonuniform_sampling_detected(self):
        sim, _ = self._wave_sim()
        probe = Probe(GlobalBox((0, 2), (2, 4)))
        probe.run(sim, steps=4, every=2)
        probe.run(sim, steps=3, every=3)
        with pytest.raises(ValueError, match="non-uniform"):
            probe.sample_period

    def test_bad_every(self):
        sim, _ = self._wave_sim()
        probe = Probe(GlobalBox((0, 2), (2, 4)))
        with pytest.raises(ValueError):
            probe.run(sim, steps=4, every=0)

    def test_measures_standing_wave_tone(self):
        """End to end: a probe at a density antinode hears omega = cs k."""
        nx = 48
        sim, params = self._wave_sim(nx)
        probe = Probe(GlobalBox((0, 2), (2, 4)))  # antinode at x = 0
        period = 2 * np.pi / acoustic_frequency(float(nx), 1, params.cs)
        probe.run(sim, steps=int(6 * period), every=1)
        f = dominant_frequency(probe.signal)
        expected = params.cs / nx  # cycles per step
        assert f == pytest.approx(expected, rel=0.05)
