"""FD <-> LB seam conversions (repro.fluids.coupling).

The contract the hybrid runtimes lean on: the macro -> populations
reconstruction inverts exactly under the moment extraction (so a seam
against a resolved flow is lossless to rounding), the correction terms
carry no mass or momentum of their own, and :func:`build_converters`
wires exactly the mixed-method edges of a decomposition.
"""

import numpy as np
import pytest

from repro.core import Decomposition
from repro.fluids import FDMethod, FluidParams, LBMethod
from repro.fluids.coupling import (
    FDToLBConverter,
    LBToFDConverter,
    build_converters,
    macro_from_populations,
    populations_from_macro,
    seam_wire_fields,
    strip_velocity_gradients,
)


def _lb(ndim=2, nu=0.1, g=1e-5):
    params = FluidParams.lattice(
        ndim, nu=nu, gravity=(g,) + (0.0,) * (ndim - 1)
    )
    return LBMethod(params, ndim)


def _state(rng, shape, ndim):
    rho = 1.0 + 0.02 * rng.standard_normal(shape)
    vels = [0.01 * rng.standard_normal(shape) for _ in range(ndim)]
    grads = [
        [1e-3 * rng.standard_normal(shape) for _ in range(ndim)]
        for _ in range(ndim)
    ]
    return rho, vels, grads


class TestRoundTrip:
    @pytest.mark.parametrize("ndim", [2, 3])
    def test_macro_to_populations_to_macro_is_exact(self, ndim):
        """rho,V -> f -> rho,V closes to rounding, gradients and all:
        the half-force and non-equilibrium terms have vanishing zeroth
        and first moments by construction."""
        lb = _lb(ndim)
        rng = np.random.default_rng(7)
        shape = (6, 5, 4)[:ndim]
        rho, vels, grads = _state(rng, shape, ndim)
        f = populations_from_macro(lb, rho, vels, grads,
                                   post_collision=False)
        rho2, vels2 = macro_from_populations(lb, f)
        assert np.abs(rho2 - rho).max() < 1e-12
        for a, b in zip(vels, vels2):
            assert np.abs(a - b).max() < 1e-12

    def test_correction_terms_carry_no_mass_or_momentum(self):
        """Both epochs: f(grads) - f(no grads) sums to zero in the
        zeroth and (signed) first moments."""
        lb = _lb()
        rng = np.random.default_rng(11)
        rho, vels, grads = _state(rng, (5, 4), 2)
        for post in (True, False):
            full = populations_from_macro(lb, rho, vels, grads,
                                          post_collision=post)
            bare = populations_from_macro(lb, rho, vels, None,
                                          post_collision=post)
            delta = full - bare
            assert np.abs(delta.sum(axis=0)).max() < 1e-14
            for d in range(2):
                mom = np.einsum("q,q...->...", lb.lattice.e[:, d].astype(float),
                                delta)
                assert np.abs(mom).max() < 1e-14

    def test_post_collision_half_force_sign(self):
        """Streaming pulls post-collision populations, whose first
        moment is rho (u + g/2) — the Guo forcing has just deposited
        rho g of momentum."""
        lb = _lb(g=1e-4)
        rho = np.ones((4, 4))
        vels = [np.full((4, 4), 0.01), np.zeros((4, 4))]
        f = populations_from_macro(lb, rho, vels, post_collision=True)
        mom = np.einsum("q,qxy->xy", lb.lattice.e[:, 0].astype(float), f)
        assert np.abs(mom - (0.01 + 0.5e-4)).max() < 1e-12
        f = populations_from_macro(lb, rho, vels, post_collision=False)
        mom = np.einsum("q,qxy->xy", lb.lattice.e[:, 0].astype(float), f)
        assert np.abs(mom - (0.01 - 0.5e-4)).max() < 1e-12

    def test_uniform_flow_reconstructs_without_gradients(self):
        """A uniform flow's strain term vanishes: passing its (zero)
        gradients changes nothing."""
        lb = _lb()
        rho = np.full((5, 5), 1.01)
        vels = [np.full((5, 5), 0.02), np.full((5, 5), -0.01)]
        zeros = [[np.zeros((5, 5))] * 2 for _ in range(2)]
        with_g = populations_from_macro(lb, rho, vels, zeros)
        without = populations_from_macro(lb, rho, vels, None)
        assert np.array_equal(with_g, without)


class TestStripGradients:
    def test_linear_field_is_exact(self):
        y, x = np.mgrid[0:8, 0:7].astype(float)
        u = 0.3 * y - 0.2 * x
        v = 0.1 * y + 0.4 * x
        region = (slice(2, 4), slice(1, 6))
        grads = strip_velocity_gradients([u, v], region)
        assert np.allclose(grads[0][0], 0.3, atol=1e-13)   # du/dx0
        assert np.allclose(grads[1][0], -0.2, atol=1e-13)  # du/dx1
        assert np.allclose(grads[0][1], 0.1, atol=1e-13)
        assert np.allclose(grads[1][1], 0.4, atol=1e-13)
        assert grads[0][0].shape == (2, 5)

    def test_edge_strip_falls_back_one_sided(self):
        """A strip touching the array edge still gets finite,
        deterministic gradients (one-sided at the edge row)."""
        arr = np.arange(24, dtype=float).reshape(6, 4) ** 2
        region = (slice(0, 2), slice(0, 4))
        grads = strip_velocity_gradients([arr, arr.copy()], region)
        assert np.isfinite(grads[0][0]).all()
        assert grads[0][0].shape == (2, 4)


class TestConverters:
    def _methods(self):
        params = FluidParams.lattice(2, nu=0.1)
        return LBMethod(params, 2, pad=4), FDMethod(params, 2)

    def test_build_converters_mixed_edges_only(self):
        lb, fd = self._methods()
        decomp = Decomposition((16, 8), (4, 1), periodic=(True, False))
        methods = [lb, fd, fd, lb]
        conv = build_converters(decomp, methods)
        # 0|1 and 2|3 are mixed faces; 1|2 is fd|fd and the periodic
        # 3|0 wrap is lb|lb — no converters there.
        assert set(conv) == {(0, 1), (1, 0), (2, 3), (3, 2)}
        assert isinstance(conv[(0, 1)], FDToLBConverter)   # lb dst
        assert isinstance(conv[(1, 0)], LBToFDConverter)   # fd dst
        assert not build_converters(decomp, [lb] * 4)

    def test_wire_fields_follow_sender(self):
        lb, fd = self._methods()
        assert seam_wire_fields(lb) == ("f",)
        assert seam_wire_fields(fd) == ("rho", "u", "v")
        assert LBToFDConverter(lb).wire_leading == {"f": (9,)}
