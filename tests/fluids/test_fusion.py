"""The fused kernels against the pre-fusion reference implementations.

The fused `(Q, ...)` LB kernels and buffered FD kernels reorder
floating-point work (Horner forms, hoisted constants, precomputed
coefficient vectors), so they are not bit-identical to the original
per-direction loops — but they must stay within round-off of them.
The classes below re-implement the original allocating loops verbatim;
a Poiseuille channel run must agree to <= 1e-12 relative tolerance.

The fused kernels also must not allocate: after warm-up fills the
per-subregion scratch pool, a collision + moments pass reuses it
entirely, which `harness.count_allocations` verifies via tracemalloc.
"""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import FDMethod, LBMethod, FluidParams
from repro.fluids._kernels import central_diff, laplacian, shift_region
from repro.fluids.boundary import enforce_noslip
from repro.fluids.filters import FourthOrderFilter
from repro.harness import count_allocations

from ..conftest import channel_sim, perturbed_fields, rest_fields


# ----------------------------------------------------------------------
# pre-fusion reference implementations (the seed's per-direction loops)
# ----------------------------------------------------------------------
def _ref_fourth_diff_sum(a, region):
    out = np.zeros_like(a[region])
    for axis in range(len(region)):
        out += (
            a[shift_region(region, axis, -2)]
            - 4.0 * a[shift_region(region, axis, -1)]
            + 6.0 * a[region]
            - 4.0 * a[shift_region(region, axis, +1)]
            + a[shift_region(region, axis, +2)]
        )
    return out


class ReferenceFilter(FourthOrderFilter):
    def apply(self, sub, names, region):
        if not self.enabled:
            return
        keep = sub.aux["filter_keep"][region]
        for name in names:
            a = sub.fields[name]
            corr = _ref_fourth_diff_sum(a, region)
            corr *= keep
            corr *= self.eps
            a[region] -= corr


class ReferenceLBMethod(LBMethod):
    """The seed's per-population loops for equilibrium/collision/moments."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.filter = ReferenceFilter(self.params.filter_eps)

    def equilibrium(self, rho, vels, **_ignored):
        lat = self.lattice
        usq = sum(c * c for c in vels)
        out = np.empty((lat.q,) + rho.shape, dtype=np.float64)
        for i in range(lat.q):
            eu = sum(
                float(lat.e[i, d]) * vels[d] for d in range(self.ndim)
            )
            out[i] = lat.w[i] * rho * (
                1.0 + 3.0 * eu + 4.5 * eu * eu - 1.5 * usq
            )
        return out

    def _force_term(self, rho, vels, i):
        lat = self.lattice
        g = self.params.gravity
        eu = sum(float(lat.e[i, d]) * vels[d] for d in range(self.ndim))
        acc = None
        for d in range(self.ndim):
            if g[d] == 0.0:
                continue
            term = (
                3.0 * (float(lat.e[i, d]) - vels[d])
                + 9.0 * eu * float(lat.e[i, d])
            ) * g[d]
            acc = term if acc is None else acc + term
        if acc is None:
            return np.zeros_like(rho)
        return (1.0 - 0.5 / self.tau) * lat.w[i] * rho * acc

    def _relax(self, sub):
        region = sub.interior
        f = sub.fields["f"]
        rho = sub.fields["rho"][region]
        vels = [sub.fields[n][region] for n in self.vel_names]
        feq = self.equilibrium(rho, vels)
        fluid = sub.aux["fluid_f"][region]
        omega = 1.0 / self.tau
        has_force = any(g != 0.0 for g in self.params.gravity)
        for i in range(self.lattice.q):
            fi = f[(i,) + region]
            delta = (feq[i] - fi) * omega
            if has_force:
                delta += self._force_term(rho, vels, i)
            fi += delta * fluid

    def _macro(self, sub, region):
        f = sub.fields["f"]
        lat = self.lattice
        view = f[(slice(None),) + region]
        rho = view.sum(axis=0)
        sub.fields["rho"][region] = rho
        g = self.params.gravity
        fluid = sub.aux["fluid_f"][region]
        for d, name in enumerate(self.vel_names):
            mom = np.zeros_like(rho)
            for i in range(lat.q):
                e = float(lat.e[i, d])
                if e:
                    mom += e * view[i]
            vel = mom / rho
            if g[d] != 0.0:
                vel += 0.5 * g[d]
            sub.fields[name][region] = vel * fluid


class ReferenceFDMethod(FDMethod):
    """The seed's allocating finite-difference updates."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.filter = ReferenceFilter(self.params.filter_eps)

    def _update_velocity(self, sub):
        p = self.params
        region = sub.interior
        rho = sub.fields["rho"]
        vels = [sub.fields[n] for n in self.vel_names]
        vel_mid = [c[region] for c in vels]
        cs2 = p.cs * p.cs
        for d, name in enumerate(self.vel_names):
            c = vels[d]
            adv = vel_mid[0] * central_diff(c, region, 0, p.dx)
            for ax in range(1, self.ndim):
                adv += vel_mid[ax] * central_diff(c, region, ax, p.dx)
            press = (cs2 / rho[region]) * central_diff(rho, region, d, p.dx)
            visc = p.nu * laplacian(c, region, p.dx)
            new = sub.aux["new_" + name]
            new[region] = c[region] + p.dt * (
                -adv - press + visc + p.gravity[d]
            )
        for name in self.vel_names:
            sub.fields[name][region] = sub.aux["new_" + name][region]
        enforce_noslip(sub, self.vel_names, region)

    def _update_density(self, sub):
        p = self.params
        region = sub.interior
        enforce_noslip(sub, self.vel_names, sub.grown_interior(1))
        rho = sub.fields["rho"]
        div = None
        for d, name in enumerate(self.vel_names):
            flux = rho * sub.fields[name]
            term = central_diff(flux, region, d, p.dx)
            div = term if div is None else div + term
        rho[region] = rho[region] - p.dt * div


# ----------------------------------------------------------------------
# fused vs reference on a Poiseuille channel run
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fused_cls,ref_cls",
    [(LBMethod, ReferenceLBMethod), (FDMethod, ReferenceFDMethod)],
    ids=["lb", "fd"],
)
def test_fused_matches_reference_poiseuille(fused_cls, ref_cls):
    """50 channel steps agree with the pre-fusion loops to <= 1e-12."""
    kw = dict(shape=(32, 24), nu=0.05, g=1e-5, filter_eps=0.02)
    fused = channel_sim(fused_cls, **kw)
    ref = channel_sim(ref_cls, **kw)
    fused.step(50)
    ref.step(50)
    for name in ("rho", "u", "v"):
        np.testing.assert_allclose(
            fused.global_field(name),
            ref.global_field(name),
            rtol=1e-12,
            atol=1e-14,
            err_msg=f"field {name!r} drifted from the reference kernels",
        )


def test_fused_matches_reference_3d():
    """A short 3D LB run agrees with the reference loops too."""
    kw = dict(shape=(12, 10, 10), nu=0.05, g=1e-5, filter_eps=0.02)
    fused = channel_sim(LBMethod, **kw)
    ref = channel_sim(ReferenceLBMethod, **kw)
    fused.step(10)
    ref.step(10)
    for name in ("rho", "u", "v", "w"):
        np.testing.assert_allclose(
            fused.global_field(name),
            ref.global_field(name),
            rtol=1e-12,
            atol=1e-14,
        )


# ----------------------------------------------------------------------
# allocation-freedom of the fused hot path
# ----------------------------------------------------------------------
def _periodic_lb_sim(shape=(64, 64)):
    """A solid-free fully periodic LB domain (pure relax/stream/macro)."""
    params = FluidParams.lattice(
        2, nu=0.05, gravity=(1e-5, 0.0), filter_eps=0.02
    )
    decomp = Decomposition(shape, (1, 1), periodic=(True, True))
    return Simulation(
        LBMethod(params, 2), decomp, perturbed_fields(shape)
    )


def test_lb_relax_macro_allocation_free():
    """Collision + moments reuse the scratch pool: no new arrays."""
    sim = _periodic_lb_sim()
    sim.step(2)  # fills the scratch pool
    method = sim.method
    sub = sim.subs[0]
    region = sub.grown_interior(2)

    def relax_macro():
        method._relax(sub)
        method._macro(sub, region)

    report = count_allocations(relax_macro, warmup=2, repeat=3)
    # One interior field is 64*64*8 = 32 KiB; the default 16 KiB
    # threshold catches any temporary of even half a field.
    assert not report.allocates_arrays(), (
        f"relax+macro transiently allocated {report.peak_bytes} bytes"
    )


def test_lb_full_step_allocates_less_than_one_field():
    """A whole warmed-up step stays far below one temporary grid array."""
    sim = _periodic_lb_sim()
    sim.step(3)
    report = count_allocations(lambda: sim.step(1), warmup=2, repeat=3)
    field_bytes = 64 * 64 * 8
    assert report.peak_bytes < field_bytes, (
        f"step transiently allocated {report.peak_bytes} bytes "
        f"(one field is {field_bytes})"
    )
