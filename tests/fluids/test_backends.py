"""The kernel-backend layer: registry, resolver fallback, and parity.

The parity tests are the acceptance contract of the backend interface:
the loop kernels (numba source, executed compiled where numba imports
and interpreted where it does not) must agree with the fused numpy
kernels to 1e-10 per field after 50 steps of a forced channel flow,
boundaries included — on *both* methods.
"""

import warnings

import numpy as np
import pytest

import repro.fluids.backends as backends_mod
from repro.core import Decomposition, Simulation
from repro.fluids import (
    BackendFallbackWarning,
    FDMethod,
    FluidParams,
    KernelBackend,
    LBMethod,
    available_backends,
    channel_geometry,
    resolve_backend,
)
from repro.fluids.backends import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    BackendUnavailable,
    register_backend,
)
from repro.fluids.backends._numba_kernels import HAVE_NUMBA
from repro.fluids.backends.numba_backend import NumbaBackend
from repro.fluids.backends.numpy_backend import NumpyBackend
from tests.conftest import perturbed_fields

PARITY_TOL = 1e-10


def _channel_sim(method_cls, backend=None, shape=(24, 16), blocks=(2, 1)):
    """Forced channel flow with walls — boundaries + forcing active."""
    solid = channel_geometry(shape)
    params = FluidParams.lattice(
        2, nu=0.08, gravity=(1e-5, 0.0), filter_eps=0.02
    )
    fields = perturbed_fields(shape, seed=11)
    fields["u"][solid] = 0.0
    fields["v"][solid] = 0.0
    method = method_cls(params, 2)
    if backend is not None:
        method.set_backend(
            backend(method) if callable(backend) else backend
        )
    decomp = Decomposition(
        shape, blocks, periodic=(True, False), solid=solid
    )
    return Simulation(method, decomp, fields, solid)


def _loop_backend(method):
    """The numba-source kernels, compiled when numba imports, pure
    interpreted loops otherwise (slow, hence the small parity grids)."""
    if HAVE_NUMBA:
        return NumbaBackend(method, parallel=False)
    return NumbaBackend(method, parallel=False, mode="python")


class TestRegistry:
    def test_default_backend_is_numpy(self):
        params = FluidParams.lattice(2, nu=0.1)
        m = LBMethod(params, 2)
        assert m.backend.name == "numpy"
        assert isinstance(m.backend, NumpyBackend)

    def test_available_always_includes_numpy(self):
        avail = available_backends()
        assert "numpy" in avail
        if HAVE_NUMBA:
            assert "numba" in avail and "numba-serial" in avail
        else:
            assert "numba" not in avail

    def test_backend_names_constant(self):
        assert set(BACKEND_NAMES) == {"numpy", "numba", "numba-serial"}
        assert DEFAULT_BACKEND == "numpy"

    def test_unknown_name_raises(self):
        m = LBMethod(FluidParams.lattice(2, nu=0.1), 2)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("cuda", m)

    def test_register_custom_backend(self):
        class Custom(NumpyBackend):
            name = "custom-test"

        register_backend("custom-test", Custom)
        try:
            m = LBMethod(
                FluidParams.lattice(2, nu=0.1), 2, backend="custom-test"
            )
            assert m.backend.name == "custom-test"
        finally:
            backends_mod._REGISTRY.pop("custom-test", None)

    def test_method_ctor_accepts_instance(self):
        params = FluidParams.lattice(2, nu=0.1)
        m = FDMethod(params, 2)
        inst = NumpyBackend(m)
        m.set_backend(inst)
        assert m.backend is inst


class TestResolverFallback:
    @pytest.mark.skipif(HAVE_NUMBA, reason="numba importable here")
    def test_missing_numba_degrades_with_one_warning(self):
        backends_mod._WARNED.clear()
        m = LBMethod(FluidParams.lattice(2, nu=0.1), 2)
        with pytest.warns(BackendFallbackWarning, match="falling back"):
            b = resolve_backend("numba", m)
        assert b.name == "numpy"
        # second request for the same unavailable backend: silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba", m).name == "numpy"

    def test_unsupported_ndim_degrades(self):
        """The loop kernels are 2D-only; 3D must fall back, not crash."""
        backends_mod._WARNED.clear()
        m = LBMethod(FluidParams.lattice(3, nu=0.1), 3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendFallbackWarning)
            assert resolve_backend("numba", m).name == "numpy"

    def test_factory_raises_backend_unavailable_directly(self):
        m = LBMethod(FluidParams.lattice(3, nu=0.1), 3)
        with pytest.raises(BackendUnavailable):
            NumbaBackend(m)

    def test_simulation_runs_with_fallback(self):
        """A run requesting numba completes on any host."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", BackendFallbackWarning)
            sim = _channel_sim(LBMethod, backend=None)
            sim.method.set_backend("numba")
        sim.step(3)
        assert np.isfinite(sim.global_field("rho")).all()


class TestParity:
    """numpy vs the loop kernels: <= 1e-10 per field after 50 steps."""

    @pytest.mark.parametrize("method_cls", [LBMethod, FDMethod],
                             ids=["lb2d", "fd2d"])
    def test_loop_kernels_match_numpy(self, method_cls):
        ref = _channel_sim(method_cls)
        alt = _channel_sim(method_cls, backend=_loop_backend)
        ref.step(50)
        alt.step(50)
        for name in ref.method.field_names:
            a, b = ref.global_field(name), alt.global_field(name)
            err = float(np.abs(a - b).max())
            assert err <= PARITY_TOL, f"{name}: max|diff| = {err:.3e}"

    @pytest.mark.skipif(not HAVE_NUMBA, reason="needs numba")
    @pytest.mark.parametrize("method_cls", [LBMethod, FDMethod],
                             ids=["lb2d", "fd2d"])
    def test_parallel_matches_serial_numba(self, method_cls):
        """prange must not change results (no cross-row reductions)."""
        ser = _channel_sim(
            method_cls, backend=lambda m: NumbaBackend(m, parallel=False)
        )
        par = _channel_sim(
            method_cls, backend=lambda m: NumbaBackend(m, parallel=True)
        )
        ser.step(50)
        par.step(50)
        for name in ser.method.field_names:
            assert np.array_equal(
                ser.global_field(name), par.global_field(name)
            ), name

    def test_interpreted_loops_exactly_match_numpy_one_step(self):
        """One step interpreted is cheap enough to hold everywhere —
        guards the numba *source* even on hosts that never compile it."""
        ref = _channel_sim(LBMethod, shape=(16, 12), blocks=(1, 1))
        alt = _channel_sim(
            LBMethod,
            backend=lambda m: NumbaBackend(
                m, parallel=False, mode="python"
            ),
            shape=(16, 12), blocks=(1, 1),
        )
        ref.step(1)
        alt.step(1)
        for name in ref.method.field_names:
            err = np.abs(
                ref.global_field(name) - alt.global_field(name)
            ).max()
            assert err <= 1e-14, f"{name}: {err:.3e}"


class TestBackendInterface:
    def test_abstract_backend_raises(self):
        m = LBMethod(FluidParams.lattice(2, nu=0.1), 2)
        b = KernelBackend(m)
        with pytest.raises(NotImplementedError):
            b.lb_relax(None)
        with pytest.raises(NotImplementedError):
            b.fd_velocity(None)

    def test_backend_flows_through_facade_settings(self):
        import repro
        from repro.distrib import ProblemSpec, RunSettings

        spec = ProblemSpec(
            method="lb", grid_shape=(24, 16), blocks=(2, 1),
            periodic=(True, False),
            params={"nu": 0.1, "gravity": (1e-5, 0.0)},
            geometry={"kind": "channel"},
        )
        base = repro.run(spec, steps=5)
        named = repro.run(
            spec, settings=RunSettings(steps=5, backend="numpy")
        )
        for name in base.fields:
            assert np.array_equal(base.fields[name], named.fields[name])
