"""Boundary conditions: boxes, no-slip, the wall density rule, openings."""

import numpy as np
import pytest

from repro.core import Decomposition, make_subregions
from repro.fluids import GlobalBox, PressureOutlet, VelocityInlet
from repro.fluids.boundary import (
    build_wall_aux,
    enforce_noslip,
    enforce_wall_density,
)


class TestGlobalBox:
    def test_validation(self):
        with pytest.raises(ValueError):
            GlobalBox((0, 0), (0, 4))
        with pytest.raises(ValueError):
            GlobalBox((0,), (2, 2))

    def test_local_mask_inside_block(self):
        d = Decomposition((16, 16), (2, 2))
        subs = make_subregions(d, 2, {"a": np.zeros((16, 16))})
        box = GlobalBox((2, 3), (5, 6))
        m = box.local_mask(subs[0])  # block (0,0), lo=(0,0)
        assert m.sum() == 9
        assert m[2 + 2, 3 + 2] and m[4 + 2, 5 + 2]

    def test_local_mask_in_other_block_via_ghosts(self):
        d = Decomposition((16, 16), (2, 2))
        subs = make_subregions(d, 2, {"a": np.zeros((16, 16))})
        # box fully in block (1,0); block (0,0) sees its ghost fringe
        box = GlobalBox((8, 0), (10, 16))
        rank0 = subs[0]
        m = box.local_mask(rank0)
        # padded x extent: block 0 covers global x in [-2, 10); the box
        # rows 8,9 are ghost rows 10, 11
        assert m[10].any() and m[11].any()
        assert m.sum() == 2 * (8 + 2)  # clipped to padded y extent

    def test_local_mask_outside(self):
        d = Decomposition((16, 16), (2, 2))
        subs = make_subregions(d, 2, {"a": np.zeros((16, 16))})
        box = GlobalBox((12, 12), (14, 14))
        assert not box.local_mask(subs[0]).any()

    def test_masks_partition_union(self):
        """Union of interior-restricted masks = the box."""
        d = Decomposition((16, 16), (2, 2))
        subs = make_subregions(d, 2, {"a": np.zeros((16, 16))})
        box = GlobalBox((3, 5), (12, 11))
        total = 0
        for sub in subs:
            m = box.local_mask(sub)[sub.interior]
            total += int(m.sum())
        assert total == 9 * 6


class TestVelocityInlet:
    def test_constant_velocity(self):
        inlet = VelocityInlet(GlobalBox((0, 0), (1, 4)), (0.1, 0.0))
        assert inlet.velocity_at(0) == (0.1, 0.0)
        assert inlet.velocity_at(100) == (0.1, 0.0)

    def test_callable_velocity(self):
        inlet = VelocityInlet(
            GlobalBox((0, 0), (1, 4)),
            lambda step: (0.01 * min(step, 10), 0.0),
        )
        assert inlet.velocity_at(5) == (0.05, 0.0)
        assert inlet.velocity_at(50) == (0.1, 0.0)


class TestWallRules:
    def _setup(self, solid, field):
        d = Decomposition(field.shape, (1, 1))
        sub = make_subregions(d, 3, {"rho": field, "u": field.copy(),
                                     "v": field.copy()}, solid)[0]
        build_wall_aux(sub)
        return sub

    def test_noslip_zeroes_solid_only(self):
        solid = np.zeros((12, 12), dtype=bool)
        solid[:, 0] = True
        rng = np.random.default_rng(0)
        f = rng.random((12, 12)) + 1.0
        sub = self._setup(solid, f)
        enforce_noslip(sub, ("u", "v"), sub.interior)
        u = sub.interior_view("u")
        assert (u[:, 0] == 0).all()
        assert (u[:, 1:] > 0).all()

    def test_wall_density_mean_of_fluid_neighbors(self):
        solid = np.zeros((12, 12), dtype=bool)
        solid[5, 5] = True
        rho = np.ones((12, 12))
        rho[4, 5], rho[6, 5], rho[5, 4], rho[5, 6] = 1.1, 1.3, 1.2, 1.4
        sub = self._setup(solid, rho)
        enforce_wall_density(sub, sub.interior)
        got = sub.interior_view("rho")[5, 5]
        assert got == pytest.approx((1.1 + 1.3 + 1.2 + 1.4) / 4.0)

    def test_deep_solid_untouched(self):
        solid = np.zeros((12, 12), dtype=bool)
        solid[4:9, 4:9] = True
        rho = np.full((12, 12), 2.0)
        rho[6, 6] = 7.0  # deep interior of the wall
        sub = self._setup(solid, rho)
        enforce_wall_density(sub, sub.interior)
        assert sub.interior_view("rho")[6, 6] == 7.0

    def test_fluid_nodes_never_modified(self):
        solid = np.zeros((12, 12), dtype=bool)
        solid[0, :] = True
        rng = np.random.default_rng(1)
        rho = rng.random((12, 12)) + 1.0
        sub = self._setup(solid, rho)
        before = sub.interior_view("rho").copy()
        enforce_wall_density(sub, sub.interior)
        after = sub.interior_view("rho")
        np.testing.assert_array_equal(after[1:], before[1:])

    def test_zero_normal_gradient_at_plane_wall(self):
        """At a straight wall the rule copies the adjacent fluid value:
        discrete d(rho)/dn = 0."""
        solid = np.zeros((12, 12), dtype=bool)
        solid[:, 0] = True
        rng = np.random.default_rng(2)
        rho = rng.random((12, 12)) + 1.0
        sub = self._setup(solid, rho)
        enforce_wall_density(sub, sub.interior)
        r = sub.interior_view("rho")
        np.testing.assert_allclose(r[:, 0], r[:, 1])


class TestPressureOutlet:
    def test_fields(self):
        out = PressureOutlet(GlobalBox((0, 0), (2, 2)), rho=1.25)
        assert out.rho == 1.25
