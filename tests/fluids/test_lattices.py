"""D2Q9/D3Q15 lattice invariants — including the §6 payload counts that
identify these lattices as the paper's."""

import numpy as np
import pytest

from repro.fluids import D2Q9, D3Q15, lattice_for


@pytest.mark.parametrize("lat", [D2Q9, D3Q15], ids=lambda l: l.name)
class TestLatticeInvariants:
    def test_weights_sum_to_one(self, lat):
        assert lat.w.sum() == pytest.approx(1.0)

    def test_first_moment_vanishes(self, lat):
        # sum_i w_i e_i = 0 (isotropy)
        np.testing.assert_allclose(
            (lat.w[:, None] * lat.e).sum(axis=0), 0.0, atol=1e-15
        )

    def test_opposites(self, lat):
        for i in range(lat.q):
            j = lat.opposite[i]
            np.testing.assert_array_equal(lat.e[j], -lat.e[i])
            assert lat.w[j] == lat.w[i]

    def test_opposite_is_involution(self, lat):
        np.testing.assert_array_equal(
            lat.opposite[lat.opposite], np.arange(lat.q)
        )

    def test_rest_population_first(self, lat):
        assert (lat.e[0] == 0).all()


@pytest.mark.parametrize("lat", [D2Q9, D3Q15], ids=lambda l: l.name)
def test_second_moment_cs2(lat):
    """sum_i w_i e_ia e_ib = cs^2 delta_ab with cs^2 = 1/3."""
    m = np.einsum("i,ia,ib->ab", lat.w, lat.e.astype(float), lat.e.astype(float))
    np.testing.assert_allclose(m, np.eye(lat.ndim) / 3.0, atol=1e-15)


@pytest.mark.parametrize("lat", [D2Q9, D3Q15], ids=lambda l: l.name)
def test_fourth_moment_isotropy(lat):
    """sum w e_a e_b e_c e_d = (1/9)(d_ab d_cd + d_ac d_bd + d_ad d_bc)."""
    e = lat.e.astype(float)
    m = np.einsum("i,ia,ib,ic,id->abcd", lat.w, e, e, e, e)
    d = np.eye(lat.ndim)
    expected = (
        np.einsum("ab,cd->abcd", d, d)
        + np.einsum("ac,bd->abcd", d, d)
        + np.einsum("ad,bc->abcd", d, d)
    ) / 9.0
    np.testing.assert_allclose(m, expected, atol=1e-15)


class TestCrossingPopulations:
    """§6: 'LB communicates 5 variables per fluid node in three
    dimensional problems [...] in two dimensional problems, both methods
    communicate 3 variables per fluid node.'"""

    def test_d2q9_three_per_face(self):
        for axis in range(2):
            for side in (-1, 1):
                assert len(D2Q9.crossing_populations(axis, side)) == 3

    def test_d3q15_five_per_face(self):
        for axis in range(3):
            for side in (-1, 1):
                assert len(D3Q15.crossing_populations(axis, side)) == 5

    def test_crossings_partition(self):
        # each non-axis-aligned population crosses one face per axis
        idx = D2Q9.crossing_populations(0, 1)
        assert 1 in idx and 5 in idx and 7 in idx


class TestLatticeFor:
    def test_dimensions(self):
        assert lattice_for(2) is D2Q9
        assert lattice_for(3) is D3Q15
        with pytest.raises(ValueError):
            lattice_for(4)

    def test_sizes(self):
        assert D2Q9.q == 9 and D2Q9.ndim == 2
        assert D3Q15.q == 15 and D3Q15.ndim == 3
