"""Lattice Boltzmann: equilibrium, conservation, convergence, walls."""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import FluidParams, LBMethod, poiseuille_profile, total_mass
from tests.conftest import channel_sim, rest_fields


class TestConstruction:
    def test_single_message_per_step(self):
        """§6: 'LB sends all the boundary data in one message'."""
        m = LBMethod(FluidParams.lattice(2, nu=0.1), 2)
        assert m.exchange_phases == (("f",),)

    def test_tau_from_viscosity(self):
        m = LBMethod(FluidParams.lattice(2, nu=0.1), 2)
        assert m.tau == pytest.approx(0.8)

    def test_requires_lattice_units(self):
        with pytest.raises(ValueError, match="lattice"):
            LBMethod(FluidParams(nu=0.1, cs=0.5), 2)

    def test_bad_gravity(self):
        with pytest.raises(ValueError):
            LBMethod(FluidParams.lattice(2, nu=0.1), 3)


class TestEquilibrium:
    @pytest.fixture
    def method(self):
        return LBMethod(FluidParams.lattice(2, nu=0.1), 2)

    def test_density_moment(self, method):
        rng = np.random.default_rng(0)
        rho = 1.0 + 0.1 * rng.random((6, 5))
        vels = [0.05 * rng.random((6, 5)), 0.05 * rng.random((6, 5))]
        feq = method.equilibrium(rho, vels)
        np.testing.assert_allclose(feq.sum(axis=0), rho, rtol=1e-13)

    def test_momentum_moment(self, method):
        rng = np.random.default_rng(1)
        rho = 1.0 + 0.1 * rng.random((6, 5))
        vels = [0.05 * rng.random((6, 5)), 0.05 * rng.random((6, 5))]
        feq = method.equilibrium(rho, vels)
        lat = method.lattice
        for d in range(2):
            mom = sum(
                float(lat.e[i, d]) * feq[i] for i in range(lat.q)
            )
            np.testing.assert_allclose(mom, rho * vels[d], rtol=1e-12,
                                       atol=1e-15)

    def test_rest_equilibrium_is_weights(self, method):
        rho = np.ones((3, 3))
        feq = method.equilibrium(rho, [np.zeros((3, 3))] * 2)
        for i in range(9):
            np.testing.assert_allclose(feq[i], method.lattice.w[i])


class TestConservation:
    def _periodic_sim(self, filter_eps=0.0, ndim=2):
        shape = (20, 16) if ndim == 2 else (10, 8, 8)
        params = FluidParams.lattice(ndim, nu=0.05, filter_eps=filter_eps)
        rng = np.random.default_rng(0)
        fields = rest_fields(shape)
        fields["rho"] = 1.0 + 1e-3 * (rng.random(shape) - 0.5)
        d = Decomposition(shape, (1,) * ndim, periodic=(True,) * ndim)
        return Simulation(LBMethod(params, ndim), d, fields)

    def test_mass_exactly_conserved(self):
        """Collision conserves sum_i F_i per node and streaming only
        moves populations: total mass is invariant to round-off."""
        sim = self._periodic_sim()
        m0 = total_mass(sim.global_field("rho"))
        sim.step(200)
        assert total_mass(sim.global_field("rho")) == pytest.approx(
            m0, rel=1e-13
        )

    def test_momentum_conserved_without_force(self):
        sim = self._periodic_sim()
        lat = sim.method.lattice

        def momentum():
            f = sim.global_field("f")
            per_pop = f.reshape(lat.q, -1).sum(axis=1)
            return per_pop @ lat.e.astype(float)

        mom0 = momentum()
        sim.step(200)
        np.testing.assert_allclose(momentum(), mom0, atol=1e-12)

    def test_mass_conserved_3d(self):
        sim = self._periodic_sim(ndim=3)
        m0 = total_mass(sim.global_field("rho"))
        sim.step(60)
        assert total_mass(sim.global_field("rho")) == pytest.approx(
            m0, rel=1e-13
        )

    def test_populations_stay_positive_for_small_perturbations(self):
        sim = self._periodic_sim()
        sim.step(100)
        assert sim.global_field("f").min() > 0


class TestPoiseuille:
    def _steady_error(self, ny, nu=0.1, g=1e-6):
        sim = channel_sim(LBMethod, shape=(8, ny), nu=nu, g=g)
        prev = None
        for _ in range(300):
            sim.step(200)
            u = sim.global_field("u")[4]
            if prev is not None and np.abs(u - prev).max() < 1e-12 * max(
                u.max(), 1e-30
            ):
                break
            prev = u.copy()
        y = np.arange(ny, dtype=float) - 0.5  # halfway bounce-back wall
        exact = poiseuille_profile(y, ny - 2.0, g, nu)
        fl = slice(1, ny - 1)
        return np.abs(u[fl] - exact[fl]).max() / exact.max()

    def test_profile_accuracy(self):
        assert self._steady_error(18) < 5e-3

    def test_quadratic_convergence(self):
        """§7: 'both methods converge quadratically with increased
        resolution in space'."""
        e1 = self._steady_error(10)
        e2 = self._steady_error(18)  # channel width doubles: 8 -> 16
        order = np.log2(e1 / e2)
        assert order > 1.5

    def test_no_slip_at_wall(self):
        sim = channel_sim(LBMethod, shape=(8, 15))
        sim.step(400)
        u = sim.global_field("u")
        assert np.abs(u[:, 0]).max() == 0.0  # macro velocity zeroed at solid
        # first fluid node moves far slower than the centerline
        assert np.abs(u[4, 1]) < 0.35 * np.abs(u[4, 7])


class TestLB3D:
    def test_3d_channel_finite_and_flowing(self):
        sim = channel_sim(LBMethod, shape=(8, 10, 10), nu=0.08, g=1e-6)
        sim.step(150)
        u = sim.global_field("u")
        assert np.isfinite(u).all()
        assert u.max() > 0
        assert sim.global_field("f").shape == (15, 8, 10, 10)

    def test_3d_duct_symmetry(self):
        sim = channel_sim(LBMethod, shape=(6, 11, 11), nu=0.08, g=1e-6)
        sim.step(600)
        u = sim.global_field("u")[3]
        np.testing.assert_allclose(u, u[::-1, :], atol=1e-12)
        np.testing.assert_allclose(u, u[:, ::-1], atol=1e-12)
