"""Shared fixtures and problem builders for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import FDMethod, FluidParams, LBMethod, channel_geometry


def rest_fields(shape: tuple[int, ...], rho0: float = 1.0) -> dict:
    """Uniform fluid at rest."""
    ndim = len(shape)
    fields = {"rho": np.full(shape, rho0)}
    for name in ("u", "v", "w")[:ndim]:
        fields[name] = np.zeros(shape)
    return fields


def perturbed_fields(
    shape: tuple[int, ...], seed: int = 0, amplitude: float = 1e-3
) -> dict:
    """Reproducible random density/velocity perturbation around rest."""
    rng = np.random.default_rng(seed)
    fields = rest_fields(shape)
    fields["rho"] += amplitude * (rng.random(shape) - 0.5)
    for name in ("u", "v", "w")[: len(shape)]:
        fields[name] += 0.1 * amplitude * (rng.random(shape) - 0.5)
    return fields


def channel_sim(
    method_cls,
    shape=(32, 24),
    blocks=None,
    nu=0.1,
    g=1e-5,
    filter_eps=0.0,
    fields=None,
) -> Simulation:
    """A body-force-driven periodic channel (the §7 validation flow)."""
    ndim = len(shape)
    if blocks is None:
        blocks = (1,) * ndim
    gravity = (g,) + (0.0,) * (ndim - 1)
    params = FluidParams.lattice(ndim, nu=nu, gravity=gravity,
                                 filter_eps=filter_eps)
    solid = channel_geometry(shape)
    periodic = (True,) + (False,) * (ndim - 1)
    decomp = Decomposition(shape, blocks, periodic=periodic, solid=solid)
    if fields is None:
        fields = rest_fields(shape)
    return Simulation(method_cls(params, ndim), decomp, fields, solid)


@pytest.fixture
def lattice_params_2d() -> FluidParams:
    return FluidParams.lattice(2, nu=0.1)


@pytest.fixture
def lattice_params_3d() -> FluidParams:
    return FluidParams.lattice(3, nu=0.1)
