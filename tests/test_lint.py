"""Source-level conventions the runtimes must keep.

Deadlines and durations use ``time.monotonic()`` / ``time.perf_counter``
everywhere — a wall clock stepped by NTP mid-run would corrupt timeouts
and span durations.  ``time.time()`` is allowed only to *record* wall
time (log stamps, diagnostics records, the tracer's alignment origin),
and every such line must say so with a ``wall`` marker so this lint can
tell intent from accident.
"""

import re
from pathlib import Path

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: packages whose hot paths and protocols must stay monotonic
MONOTONIC_PACKAGES = ("core", "net", "distrib")


def _py_files():
    for pkg in MONOTONIC_PACKAGES:
        yield from (SRC / pkg).rglob("*.py")


def test_no_bare_wall_clock_in_runtimes():
    """Every ``time.time()`` in core/net/distrib carries a wall marker."""
    offenders = []
    for path in _py_files():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "time.time()" in line and "wall" not in line:
                offenders.append(f"{path.relative_to(SRC)}:{lineno}: "
                                 f"{line.strip()}")
    assert not offenders, (
        "bare time.time() in a runtime package — use time.monotonic() "
        "for deadlines, or mark the line as a wall-clock record "
        "(wall_time field / '# wall stamp'):\n" + "\n".join(offenders)
    )


def test_no_datetime_now_in_runtimes():
    """``datetime.now()`` is the same wall clock in disguise."""
    pattern = re.compile(r"datetime\.(?:datetime\.)?now\(")
    offenders = []
    for path in _py_files():
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(line) and "wall" not in line:
                offenders.append(f"{path.relative_to(SRC)}:{lineno}")
    assert not offenders, (
        "datetime.now() in a runtime package:\n" + "\n".join(offenders)
    )
