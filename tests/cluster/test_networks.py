"""Switched/future network models (§9's prediction)."""

import pytest

from repro.cluster import (
    ClusterSimulation,
    EventQueue,
    NETWORK_PRESETS,
    NetworkParams,
    SharedBus,
    SwitchedNetwork,
    make_network,
)


class TestSwitchedNetwork:
    def _net(self, **kw):
        q = EventQueue()
        return q, SwitchedNetwork(q, bandwidth=1e6, overhead=1e-3, **kw)

    def test_disjoint_pairs_concurrent(self):
        """a->b and c->d do not contend: both arrive after one wire time."""
        q, net = self._net()
        arrivals = []
        net.send(10_000, lambda t: arrivals.append(t), src="a", dst="b")
        net.send(10_000, lambda t: arrivals.append(t), src="c", dst="d")
        q.run()
        assert arrivals[0] == pytest.approx(0.011)
        assert arrivals[1] == pytest.approx(0.011)

    def test_same_sender_serializes(self):
        q, net = self._net()
        arrivals = []
        net.send(10_000, lambda t: arrivals.append(t), src="a", dst="b")
        net.send(10_000, lambda t: arrivals.append(t), src="a", dst="c")
        q.run()
        assert arrivals[1] == pytest.approx(0.022)

    def test_same_receiver_serializes(self):
        q, net = self._net()
        arrivals = []
        net.send(10_000, lambda t: arrivals.append(t), src="a", dst="c")
        net.send(10_000, lambda t: arrivals.append(t), src="b", dst="c")
        q.run()
        assert arrivals[1] == pytest.approx(0.022)

    def test_full_duplex(self):
        """a->b and b->a ride different links: no contention."""
        q, net = self._net()
        arrivals = []
        net.send(10_000, lambda t: arrivals.append(t), src="a", dst="b")
        net.send(10_000, lambda t: arrivals.append(t), src="b", dst="a")
        q.run()
        assert arrivals[0] == arrivals[1] == pytest.approx(0.011)

    def test_stats_tracked(self):
        q, net = self._net()
        net.send(500, lambda t: None, src="a", dst="b")
        q.run()
        assert net.stats.messages == 1
        assert net.stats.bytes == 500

    def test_validation(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            SwitchedNetwork(q, bandwidth=0)
        with pytest.raises(ValueError):
            SwitchedNetwork(q, overhead=-1)


class TestMakeNetwork:
    def test_presets_exist(self):
        assert set(NETWORK_PRESETS) == {
            "ethernet10", "switched10", "fddi100", "atm155",
        }

    def test_bus_preset(self):
        q = EventQueue()
        assert isinstance(make_network(q, preset="ethernet10"), SharedBus)
        assert isinstance(make_network(q, preset="fddi100"), SharedBus)

    def test_switch_preset(self):
        q = EventQueue()
        assert isinstance(
            make_network(q, preset="switched10"), SwitchedNetwork
        )
        atm = make_network(q, preset="atm155")
        assert isinstance(atm, SwitchedNetwork)
        assert atm.bandwidth == pytest.approx(19.4e6)

    def test_only_ethernet_collides(self):
        q = EventQueue()
        eth = make_network(q, preset="ethernet10", collision_factor=0.05)
        fddi = make_network(q, preset="fddi100", collision_factor=0.05)
        assert eth.collision_factor == 0.05
        assert fddi.collision_factor == 0.0

    def test_unknown_preset(self):
        with pytest.raises(ValueError, match="preset"):
            make_network(EventQueue(), preset="token-ring-4")

    def test_unknown_topology(self):
        with pytest.raises(ValueError, match="topology"):
            make_network(EventQueue(), topology="hypercube")


class TestSection9Prediction:
    """'New technologies [...] will make practical three-dimensional
    simulations' — quantified."""

    def _f3d(self, preset, p=16):
        sim = ClusterSimulation(
            "lb", 3, (p, 1, 1), 25,
            network=NetworkParams(preset=preset),
        )
        return sim.run(steps=20).efficiency

    def test_switch_rescues_3d(self):
        f_bus = self._f3d("ethernet10")
        f_switch = self._f3d("switched10")
        assert f_switch > f_bus + 0.15

    def test_faster_media_help_further(self):
        f_switch = self._f3d("switched10")
        f_atm = self._f3d("atm155")
        assert f_atm > f_switch
        assert f_atm > 0.9  # 3D becomes genuinely practical

    def test_fddi_beats_shared_ethernet(self):
        assert self._f3d("fddi100") > self._f3d("ethernet10") + 0.15

    def test_2d_barely_cares(self):
        """2D was already fine on the shared bus; the switch adds little
        — the technologies matter precisely where the paper says."""
        def f2d(preset):
            sim = ClusterSimulation(
                "lb", 2, (16, 1), 120,
                network=NetworkParams(preset=preset),
            )
            return sim.run(steps=20).efficiency

        gain_2d = f2d("switched10") - f2d("ethernet10")
        gain_3d = self._f3d("switched10") - self._f3d("ethernet10")
        assert gain_3d > gain_2d
