"""Shared-bus Ethernet model: serialization, overhead, collisions."""

import pytest

from repro.cluster import EventQueue, SharedBus


def _bus(**kw):
    q = EventQueue()
    defaults = dict(bandwidth=1e6, overhead=1e-3, collision_factor=0.0)
    defaults.update(kw)
    return q, SharedBus(q, **defaults)


class TestTransmission:
    def test_single_message_time(self):
        q, bus = _bus()
        arrivals = []
        bus.send(10_000, lambda t: arrivals.append(t))
        q.run()
        assert arrivals == [pytest.approx(1e-3 + 0.01)]

    def test_messages_serialize(self):
        """Only one frame on the wire at a time — concurrent sends queue."""
        q, bus = _bus()
        arrivals = []
        bus.send(10_000, lambda t: arrivals.append(t))
        bus.send(10_000, lambda t: arrivals.append(t))
        q.run()
        assert arrivals[0] == pytest.approx(0.011)
        assert arrivals[1] == pytest.approx(0.022)

    def test_idle_gap_not_charged(self):
        q, bus = _bus()
        arrivals = []
        bus.send(1000, lambda t: arrivals.append(t))
        q.run()
        q.schedule(10.0, lambda t: bus.send(1000, lambda t2: arrivals.append(t2)))
        q.run()
        assert arrivals[1] == pytest.approx(10.0 + 2e-3)

    def test_overhead_dominates_small_messages(self):
        """§7: 'each message in a local area network incurs an overhead
        which becomes important when the messages are small' — the FD
        vs LB difference."""
        q, bus = _bus()
        small = bus.transmit_time(100)
        assert small > 0.9e-3  # overhead floor
        assert bus.transmit_time(200) < 2 * small


class TestCollisions:
    def test_backlog_inflates_wire_time(self):
        q, bus = _bus(collision_factor=0.1)
        arrivals = []
        for _ in range(3):
            bus.send(10_000, lambda t: arrivals.append(t))
        q.run()
        # 1st: backlog 0 -> 11 ms; 2nd: backlog 1 -> 1 + 10*1.1 = 12 ms;
        # 3rd: backlog 2 -> 13 ms
        assert arrivals[0] == pytest.approx(0.011)
        assert arrivals[1] == pytest.approx(0.011 + 0.012)
        assert arrivals[2] == pytest.approx(0.011 + 0.012 + 0.013)

    def test_backlog_clears(self):
        q, bus = _bus(collision_factor=0.1)
        bus.send(1000, lambda t: None)
        q.run()
        assert bus.backlog() == 0


class TestStats:
    def test_counters(self):
        q, bus = _bus()
        bus.send(500, lambda t: None)
        bus.send(700, lambda t: None)
        q.run()
        assert bus.stats.messages == 2
        assert bus.stats.bytes == 1200
        assert bus.stats.busy_time == pytest.approx(2e-3 + 1.2e-3)

    def test_queue_delay_tracked(self):
        q, bus = _bus()
        bus.send(100_000, lambda t: None)  # 0.101 s on the wire
        bus.send(100, lambda t: None)
        q.run()
        assert bus.stats.total_queue_delay == pytest.approx(0.101)
        assert bus.stats.max_queue_delay == pytest.approx(0.101)

    def test_network_errors_on_excessive_wait(self):
        """'the TCP/IP protocol fails to deliver messages after
        excessive retransmissions' under heavy 3D traffic (§7)."""
        q, bus = _bus(error_wait_threshold=0.05)
        for _ in range(3):
            bus.send(100_000, lambda t: None)
        q.run()
        assert bus.stats.network_errors == 2

    def test_utilization(self):
        q, bus = _bus()
        bus.send(1_000_000, lambda t: None)  # ~1 s busy
        q.run()
        u = bus.stats.utilization(2.0)
        assert u == pytest.approx((1e-3 + 1.0) / 2.0)


class TestValidation:
    def test_bad_bandwidth(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            SharedBus(q, bandwidth=0)

    def test_bad_overhead(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            SharedBus(q, overhead=-1)

    def test_bad_collision_factor(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            SharedBus(q, collision_factor=-0.1)
