"""Dynamic workload allocation: the §1.1 baseline."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import ClusterSimulation, LoadTrace, paper_sim_cluster
from repro.cluster.allocation import proportional_shares, repartition_cost


class TestProportionalShares:
    def test_equal_speeds_equal_shares(self):
        assert proportional_shares(100, [1.0, 1.0, 1.0, 1.0]) == [25] * 4

    def test_proportionality(self):
        shares = proportional_shares(300, [2.0, 1.0])
        assert shares == [200, 100]

    def test_sums_exactly(self):
        shares = proportional_shares(101, [1.0, 1.0, 1.0])
        assert sum(shares) == 101

    @given(
        st.integers(10, 100_000),
        st.lists(st.floats(0.1, 10.0), min_size=1, max_size=12),
    )
    def test_properties(self, total, speeds):
        if total < len(speeds):
            return
        shares = proportional_shares(total, speeds)
        assert sum(shares) == total
        assert all(s >= 1 for s in shares)
        # faster processors never get a smaller share by more than the
        # rounding granule
        for i in range(len(speeds)):
            for j in range(len(speeds)):
                if speeds[i] > speeds[j]:
                    assert shares[i] >= shares[j] - 1

    def test_too_few_nodes(self):
        with pytest.raises(ValueError):
            proportional_shares(2, [1.0, 1.0, 1.0])

    def test_bad_speed(self):
        with pytest.raises(ValueError):
            proportional_shares(10, [1.0, 0.0])


class TestRepartitionCost:
    def test_no_move_costs_only_overhead(self):
        assert repartition_cost([50, 50], [50, 50], 72, 1e6) == 1.0

    def test_moved_nodes_charged(self):
        # 10 nodes move: 10 * 72 B / 1 MB/s = 0.72 ms
        cost = repartition_cost([60, 40], [50, 50], 72.0, 1e6,
                                fixed_overhead=0.0)
        assert cost == pytest.approx(10 * 72 / 1e6)

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            repartition_cost([10, 10], [10, 11], 72, 1e6)


class TestRebalancePolicy:
    def _traces(self):
        return {"hp715-01": LoadTrace.busy_from(5.0, load=2.0)}

    def test_rebalance_triggers_and_resizes(self):
        sim = ClusterSimulation(
            "lb", 2, (4, 1), 120,
            hosts=paper_sim_cluster(self._traces()),
        )
        res = sim.run(steps=60, monitor_poll=2.0, policy="rebalance")
        assert len(sim.rebalances) >= 1
        _, shares = sim.rebalances[0]
        # the busy host (rank 1) got a much smaller slab
        assert shares[1] < min(shares[0], shares[2], shares[3])
        assert sum(shares) == 4 * 120 * 120
        assert res.migrations == []

    def test_rebalance_beats_doing_nothing(self):
        hosts = paper_sim_cluster(self._traces())
        stuck = ClusterSimulation(
            "lb", 2, (4, 1), 120, hosts=hosts,
        ).run(steps=200, monitor_poll=0.0)
        hosts2 = paper_sim_cluster(self._traces())
        balanced = ClusterSimulation(
            "lb", 2, (4, 1), 120, hosts=hosts2,
        ).run(steps=200, monitor_poll=5.0, policy="rebalance")
        assert balanced.elapsed < stuck.elapsed

    def test_rebalance_requires_chain(self):
        sim = ClusterSimulation("lb", 2, (2, 2), 100)
        with pytest.raises(ValueError, match="chain"):
            sim.run(steps=10, monitor_poll=1.0, policy="rebalance")

    def test_unknown_policy(self):
        sim = ClusterSimulation("lb", 2, (4, 1), 100)
        with pytest.raises(ValueError, match="policy"):
            sim.run(steps=10, policy="prayer")

    def test_no_rebalance_when_balanced(self):
        sim = ClusterSimulation("lb", 2, (4, 1), 120)
        sim.run(steps=40, monitor_poll=2.0, policy="rebalance")
        assert sim.rebalances == []
