"""The cluster simulator: efficiency behaviour and migration machinery."""

import pytest

from repro.cluster import (
    ClusterSimulation,
    LoadTrace,
    NetworkParams,
    paper_sim_cluster,
)


def _run(method="lb", ndim=2, blocks=(4, 1), side=100, steps=25, **kw):
    sim = ClusterSimulation(method, ndim, blocks, side,
                            hosts=kw.pop("hosts", None),
                            network=kw.pop("network", NetworkParams()),
                            sync_mode=kw.pop("sync_mode", "bsp"))
    return sim.run(steps=steps, **kw)


class TestBasics:
    def test_serial_is_perfectly_efficient(self):
        r = _run(blocks=(1, 1), side=100)
        assert r.processors == 1
        assert r.efficiency == pytest.approx(1.0, abs=1e-9)

    def test_determinism(self):
        a = _run(blocks=(4, 1), side=80)
        b = _run(blocks=(4, 1), side=80)
        assert a.time_per_step == b.time_per_step
        assert a.bus.messages == b.bus.messages

    def test_efficiency_below_one_with_communication(self):
        r = _run(blocks=(4, 1), side=100)
        assert 0.0 < r.efficiency < 1.0

    def test_message_accounting(self):
        """LB: one message per neighbour per step; a (4x1) chain has 6
        directed neighbour pairs."""
        r = _run(blocks=(4, 1), side=50, steps=10)
        assert r.bus.messages == 6 * 10

    def test_fd_doubles_messages(self):
        rl = _run(method="lb", blocks=(4, 1), side=50, steps=10)
        rf = _run(method="fd", blocks=(4, 1), side=50, steps=10)
        assert rf.bus.messages == 2 * rl.bus.messages

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSimulation("fem", 2, (2, 2), 50)
        with pytest.raises(ValueError):
            ClusterSimulation("lb", 2, (2, 2, 2), 50)
        with pytest.raises(ValueError):
            ClusterSimulation("lb", 2, (2, 2), 50, sync_mode="magic")
        with pytest.raises(ValueError):
            ClusterSimulation("lb", 3, (3, 3, 3), 20)  # 27 > 25 hosts

    def test_steps_positive(self):
        sim = ClusterSimulation("lb", 2, (2, 1), 50)
        with pytest.raises(ValueError):
            sim.run(steps=0)


class TestHybridMethods:
    """Per-rank method assignment in the discrete-event model."""

    def test_uniform_sequence_collapses_to_string(self):
        sim = ClusterSimulation(["lb", "lb"], 2, (2, 1), 50)
        assert sim.method == "lb"
        assert sim.methods == ("lb", "lb")

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulation(["lb", "fd", "fd"], 2, (2, 1), 50)
        with pytest.raises(ValueError):
            ClusterSimulation(["lb", "fem"], 2, (2, 1), 50)

    def test_hybrid_run_completes(self):
        sim = ClusterSimulation(["lb", "lb", "fd", "fd"], 2, (4, 1), 80)
        r = sim.run(steps=25)
        assert 0.0 < r.efficiency < 1.0
        assert r.processors == 4

    def test_hybrid_determinism(self):
        mk = lambda: ClusterSimulation(
            ["lb", "fd"], 2, (2, 1), 80).run(steps=20)
        a, b = mk(), mk()
        assert a.time_per_step == b.time_per_step
        assert a.bus.messages == b.bus.messages

    def test_hybrid_message_accounting(self):
        """(4x1) chain lb,lb,fd,fd: the lb|lb edge exchanges once per
        step, the fd|fd edge twice (two phases), and the mixed seam
        edge once — the seam translation rides the phase-0 exchange."""
        sim = ClusterSimulation(["lb", "lb", "fd", "fd"], 2, (4, 1), 50)
        r = sim.run(steps=10)
        assert r.bus.messages == (2 + 2 + 4) * 10

    def test_hybrid_serial_time_prices_each_region(self):
        from repro.cluster.calibration import node_speed

        sim = ClusterSimulation(["lb", "fd"], 2, (2, 1), 50)
        expected = sum(
            50 * 50 / node_speed(m, 2, "715/50") for m in ("lb", "fd")
        )
        assert sim.serial_time_per_step() == pytest.approx(expected)


class TestEfficiencyShape:
    def test_monotone_in_grain(self):
        """Bigger subregions, better efficiency (figs. 5, 7, 10)."""
        effs = [
            _run(blocks=(4, 4), side=s).efficiency for s in (30, 80, 200)
        ]
        assert effs[0] < effs[1] < effs[2]

    def test_decreasing_in_processors(self):
        """Shared bus: more processors, more contention (fig. 9)."""
        effs = [
            _run(blocks=(p, 1), side=120).efficiency for p in (2, 8, 16)
        ]
        assert effs[0] > effs[1] > effs[2]

    def test_3d_worse_than_2d(self):
        """Fig. 9: comparable grains, 3D collapses on shared Ethernet."""
        e2 = _run(ndim=2, blocks=(16, 1), side=120).efficiency
        e3 = _run(ndim=3, blocks=(16, 1, 1), side=25).efficiency
        assert e3 < e2 - 0.1

    def test_fd_worse_than_lb_at_small_grain(self):
        """Fig. 5 vs fig. 7: two small messages per step lose to one."""
        ef = _run(method="fd", blocks=(4, 4), side=30).efficiency
        el = _run(method="lb", blocks=(4, 4), side=30).efficiency
        assert ef < el

    def test_loose_sync_beats_bsp(self):
        """Pipelined (switched-network-like) communication recovers
        efficiency the synchronized bursts lose."""
        bsp = _run(blocks=(8, 1), side=100, sync_mode="bsp").efficiency
        loose = _run(blocks=(8, 1), side=100, sync_mode="loose").efficiency
        assert loose >= bsp

    def test_slow_models_lower_efficiency_beyond_16(self):
        """P > 16 adds 720/710 machines (the paper normalizes to the
        715/50), so efficiency takes an extra hit at P = 17+."""
        e16 = _run(blocks=(16, 1), side=150).efficiency
        e20 = _run(blocks=(20, 1), side=150).efficiency
        assert e20 < e16

    def test_network_errors_under_3d_traffic(self):
        """Heavy 3D traffic overloads the bus; the error counter (TCP
        failures under excessive retransmissions, §7) must engage."""
        r = _run(ndim=3, blocks=(4, 2, 2), side=40, steps=12,
                 network=NetworkParams(error_wait_threshold=0.5))
        assert r.bus.network_errors > 0


class TestExternalLoad:
    def test_busy_host_slows_run(self):
        quiet = _run(blocks=(4, 1), side=100)
        hosts = paper_sim_cluster({"hp715-01": LoadTrace.busy_from(0.0, 2.0)})
        busy = _run(blocks=(4, 1), side=100, hosts=hosts)
        assert busy.time_per_step > 1.5 * quiet.time_per_step


class TestMigration:
    def test_migration_triggered_and_recorded(self):
        hosts = paper_sim_cluster(
            {"hp715-02": LoadTrace.busy_from(5.0, 2.0)}
        )
        sim = ClusterSimulation("lb", 2, (4, 1), 120, hosts=hosts)
        r = sim.run(steps=60, monitor_poll=2.0, migration_cost=30.0)
        assert len(r.migrations) == 1
        ev = r.migrations[0]
        assert ev.rank == 2
        assert ev.from_host == "hp715-02"
        assert ev.to_host != "hp715-02"
        assert ev.pause_duration == 30.0

    def test_migration_sync_step_is_reachable(self):
        hosts = paper_sim_cluster(
            {"hp715-00": LoadTrace.busy_from(3.0, 2.0)}
        )
        sim = ClusterSimulation("lb", 2, (4, 1), 100, hosts=hosts)
        r = sim.run(steps=40, monitor_poll=1.0)
        assert r.migrations
        assert r.migrations[0].sync_step <= 40

    def test_no_migration_without_monitor(self):
        hosts = paper_sim_cluster(
            {"hp715-00": LoadTrace.busy_from(3.0, 2.0)}
        )
        sim = ClusterSimulation("lb", 2, (4, 1), 100, hosts=hosts)
        r = sim.run(steps=40, monitor_poll=0.0)
        assert r.migrations == []

    def test_migration_pays_for_itself(self):
        """§5.1: migrations are worth it — a run that escapes a busy
        host beats one stuck sharing it."""
        traces = {"hp715-01": LoadTrace.busy_from(10.0, 2.0)}
        stuck = ClusterSimulation(
            "lb", 2, (4, 1), 150, hosts=paper_sim_cluster(dict(traces))
        ).run(steps=200, monitor_poll=0.0)
        rescued = ClusterSimulation(
            "lb", 2, (4, 1), 150, hosts=paper_sim_cluster(dict(traces))
        ).run(steps=200, monitor_poll=5.0, migration_cost=30.0)
        assert rescued.migrations
        assert rescued.elapsed < stuck.elapsed

    def test_migration_cost_visible(self):
        """The 30 s pause shows up in elapsed time but is amortized
        over a long run (§5.1: 'the cost of migration is
        insignificant')."""
        traces = {"hp715-03": LoadTrace.busy_from(1.0, 2.0)}
        short = ClusterSimulation(
            "lb", 2, (4, 1), 120, hosts=paper_sim_cluster(dict(traces))
        ).run(steps=30, monitor_poll=1.0, migration_cost=30.0)
        assert short.migrations
        # the pause dominates a 30-step run
        assert short.elapsed > 30.0


class TestEq12Identity:
    """Eq. 12: for a completely parallelizable computation with
    non-overlapping communication, efficiency equals processor
    utilization — the simulator satisfies the paper's two assumptions
    by construction on homogeneous hosts, so f = g must hold exactly."""

    def test_utilization_equals_efficiency_2d(self):
        r = _run(blocks=(8, 1), side=120, steps=30)
        assert r.utilization == pytest.approx(r.efficiency, rel=0.03)

    def test_utilization_equals_efficiency_3d(self):
        r = _run(ndim=3, blocks=(8, 1, 1), side=25, steps=30)
        assert r.utilization == pytest.approx(r.efficiency, rel=0.05)

    def test_identity_breaks_with_heterogeneous_hosts(self):
        """With mixed machine speeds the 'completely parallelizable'
        assumption (T_calc = T_1/P on every host) fails and f != g —
        the boundary of eq. 12's validity, made visible."""
        r = _run(blocks=(20, 1), side=120, steps=30)
        # hosts 17-20 are slower 720/710 models: utilization now
        # exceeds efficiency (slow hosts are busy, not useful)
        assert r.utilization > r.efficiency + 0.01


class TestCollectiveCosting:
    """In-flight diagnostics charged to the simulated bus (the PR's
    tree- vs ring-collective traffic patterns)."""

    def _sim(self, **kw):
        return ClusterSimulation("lb", 2, (2, 2), 50,
                                 sync_mode=kw.pop("sync_mode", "bsp"), **kw)

    def test_no_diagnostics_no_charges(self):
        r = self._sim().run(steps=10)
        assert r.collective_messages == 0
        assert r.collective_bytes == 0
        assert r.collective_time == 0.0

    @pytest.mark.parametrize("algorithm", ["tree", "ring"])
    def test_message_counts_match_pattern(self, algorithm):
        from repro.net import collective_pattern

        pattern = 2 * collective_pattern("allreduce", algorithm, 4, 16)
        base = self._sim().run(steps=20)
        r = self._sim(diag_every=5, collective_algorithm=algorithm)\
            .run(steps=20)
        checks = 20 // 5
        assert r.collective_messages == len(pattern) * checks
        assert r.collective_bytes == \
            sum(n for _, _, n in pattern) * checks
        assert r.bus.messages == base.bus.messages + len(pattern) * checks

    def test_collectives_cost_wall_time(self):
        base = self._sim().run(steps=20)
        r = self._sim(diag_every=5).run(steps=20)
        assert r.collective_time > 0.0
        assert r.elapsed > base.elapsed

    def test_tree_cheaper_than_ring(self):
        """The binomial tree moves fewer frames than the ring for a
        4-rank small-payload allreduce, so it costs less bus time."""
        tree = self._sim(diag_every=5, collective_algorithm="tree")\
            .run(steps=20)
        ring = self._sim(diag_every=5, collective_algorithm="ring")\
            .run(steps=20)
        assert tree.collective_messages < ring.collective_messages
        assert tree.collective_time < ring.collective_time

    def test_denser_checks_cost_more(self):
        sparse = self._sim(diag_every=10).run(steps=20)
        dense = self._sim(diag_every=2).run(steps=20)
        assert dense.collective_messages > sparse.collective_messages
        assert dense.elapsed > sparse.elapsed

    def test_loose_sync_rejected(self):
        with pytest.raises(ValueError, match="loose"):
            self._sim(sync_mode="loose", diag_every=5)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="collective algorithm"):
            self._sim(collective_algorithm="hypercube")

    def test_determinism_with_diagnostics(self):
        a = self._sim(diag_every=5).run(steps=20)
        b = self._sim(diag_every=5).run(steps=20)
        assert a.elapsed == b.elapsed
        assert a.collective_time == b.collective_time
