"""Stochastic user-activity generation."""

import pytest

from repro.cluster import (
    LoadTrace,
    expected_busy_events,
    poisson_user_traces,
)


class TestPoissonTraces:
    def test_deterministic_for_seed(self):
        a = poisson_user_traces(["h0", "h1"], 3600.0, 2.0, seed=5)
        b = poisson_user_traces(["h0", "h1"], 3600.0, 2.0, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = poisson_user_traces(["h0"], 36000.0, 2.0, seed=1)
        b = poisson_user_traces(["h0"], 36000.0, 2.0, seed=2)
        assert a != b

    def test_adding_hosts_preserves_existing(self):
        """Per-host substreams: growing the cluster never reshuffles
        the traces of hosts already present."""
        small = poisson_user_traces(["a", "b"], 7200.0, 3.0, seed=9)
        big = poisson_user_traces(["a", "b", "c"], 7200.0, 3.0, seed=9)
        assert big["a"] == small["a"]
        assert big["b"] == small["b"]

    def test_zero_rate_means_idle(self):
        traces = poisson_user_traces(["h0"], 3600.0, 0.0)
        assert traces["h0"].points == ()

    def test_event_rate_statistics(self):
        """Over many host-hours the onset count approaches the rate."""
        hours = 50.0
        names = [f"h{i}" for i in range(20)]
        traces = poisson_user_traces(
            names, hours * 3600.0, busy_rate_per_hour=1.0,
            mean_busy_minutes=10.0, seed=3,
        )
        events = expected_busy_events(traces, names)
        expected = 20 * hours * 1.0
        # busy periods suppress arrivals while running, so slightly
        # under the nominal rate; Poisson noise on top
        assert 0.6 * expected < events < 1.1 * expected

    def test_loads_within_duration(self):
        traces = poisson_user_traces(["h0"], 1800.0, 10.0, seed=7)
        for t, _ in traces["h0"].points:
            assert 0.0 <= t <= 1800.0

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_user_traces(["h"], 0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_user_traces(["h"], 10.0, -1.0)


class TestExpectedBusyEvents:
    def test_counts_onsets_only(self):
        trace = LoadTrace(points=((10.0, 2.0), (50.0, 0.0), (80.0, 2.0)))
        assert expected_busy_events({"h": trace}, ["h"]) == 2

    def test_threshold(self):
        trace = LoadTrace(points=((10.0, 1.0), (20.0, 0.0)))
        assert expected_busy_events({"h": trace}, ["h"]) == 0

    def test_only_hosts_in_use(self):
        trace = LoadTrace(points=((10.0, 2.0),))
        traces = {"used": trace, "spare": trace}
        assert expected_busy_events(traces, ["used"]) == 1
