"""Discrete-event engine."""

import pytest

from repro.cluster import EventQueue


class TestEventQueue:
    def test_fires_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(3.0, lambda t: seen.append(("c", t)))
        q.schedule(1.0, lambda t: seen.append(("a", t)))
        q.schedule(2.0, lambda t: seen.append(("b", t)))
        q.run()
        assert seen == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_ties_fire_in_schedule_order(self):
        q = EventQueue()
        seen = []
        for name in "abc":
            q.schedule(1.0, lambda t, n=name: seen.append(n))
        q.run()
        assert seen == ["a", "b", "c"]

    def test_now_advances(self):
        q = EventQueue()
        times = []
        q.schedule(5.0, lambda t: times.append(q.now))
        q.run()
        assert times == [5.0]
        assert q.now == 5.0

    def test_callbacks_can_schedule(self):
        q = EventQueue()
        seen = []

        def first(t):
            seen.append(t)
            if t < 3:
                q.schedule_after(1.0, first)

        q.schedule(1.0, first)
        q.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_run_until(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda t: seen.append(t))
        q.schedule(10.0, lambda t: seen.append(t))
        q.run(until=5.0)
        assert seen == [1.0]
        q.run()
        assert seen == [1.0, 10.0]

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(2.0, lambda t: q.schedule(1.0, lambda t2: None))
        with pytest.raises(ValueError):
            q.run()

    def test_negative_delay(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_after(-1.0, lambda t: None)

    def test_event_budget(self):
        q = EventQueue()

        def forever(t):
            q.schedule_after(1.0, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            q.run(max_events=1000)

    def test_determinism(self):
        def run_once():
            q = EventQueue()
            order = []
            for i in range(100):
                q.schedule((i * 37) % 10, lambda t, i=i: order.append(i))
            q.run()
            return order

        assert run_once() == run_once()
