"""Machine models, load traces and the §7 calibration table."""

import pytest

from repro.cluster import (
    LoadTrace,
    RELATIVE_SPEED,
    SimHost,
    U_REF_NODES_PER_S,
    VALUES_PER_NODE,
    MESSAGES_PER_STEP,
    bytes_per_boundary_node,
    node_speed,
    paper_sim_cluster,
    paper_ucalc_vcom_ratio,
)


class TestCalibrationTable:
    def test_reference_speed(self):
        """§7: relative speed 1.0 = 39132 fluid nodes per second."""
        assert U_REF_NODES_PER_S == 39132.0
        assert node_speed("lb", 2, "715/50") == 39132.0

    def test_relative_speed_table(self):
        """The full §7 table."""
        assert RELATIVE_SPEED[("lb", 2)] == {
            "715/50": 1.00, "710": 0.84, "720": 0.86,
        }
        assert RELATIVE_SPEED[("lb", 3)]["715/50"] == 0.51
        assert RELATIVE_SPEED[("fd", 2)]["715/50"] == 1.24
        assert RELATIVE_SPEED[("fd", 3)]["720"] == 0.94

    def test_fd_faster_than_lb_per_step(self):
        """§7: FD computes about twice as fast as LB per step in 3D,
        which *hurts* its efficiency (T_com/T_calc grows)."""
        assert node_speed("fd", 3) / node_speed("lb", 3) == pytest.approx(
            1.0 / 0.51, rel=1e-12
        )

    def test_payload_counts_match_section6(self):
        assert VALUES_PER_NODE[("fd", 2)] == 3
        assert VALUES_PER_NODE[("lb", 2)] == 3
        assert VALUES_PER_NODE[("fd", 3)] == 4
        assert VALUES_PER_NODE[("lb", 3)] == 5
        assert bytes_per_boundary_node("lb", 3) == 40

    def test_message_counts(self):
        assert MESSAGES_PER_STEP == {"fd": 2, "lb": 1}

    def test_fitted_ratio(self):
        assert paper_ucalc_vcom_ratio() == pytest.approx(2 / 3)


class TestLoadTrace:
    def test_idle_by_default(self):
        t = LoadTrace()
        assert t.load_at(0.0) == 0.0
        assert t.load_at(1e6) == 0.0

    def test_piecewise(self):
        t = LoadTrace(points=((10.0, 1.0), (20.0, 0.0)))
        assert t.load_at(5.0) == 0.0
        assert t.load_at(10.0) == 1.0
        assert t.load_at(15.0) == 1.0
        assert t.load_at(25.0) == 0.0

    def test_busy_from(self):
        t = LoadTrace.busy_from(100.0, load=2.0)
        assert t.load_at(99.9) == 0.0
        assert t.load_at(100.1) == 2.0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace(points=((5.0, 1.0), (1.0, 0.0)))

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            LoadTrace(points=((1.0, -0.5),))


class TestSimHost:
    def test_speed_of_idle_host(self):
        h = SimHost("a", "715/50")
        assert h.speed("lb", 2, 0.0) == 39132.0

    def test_competing_load_halves_speed(self):
        """A second full-time process: the niced parallel subprocess
        gets the leftover cycles."""
        h = SimHost("a", "715/50", LoadTrace.busy_from(0.0, 1.0))
        assert h.speed("lb", 2, 1.0) == pytest.approx(39132.0 / 2.0)

    def test_slower_models(self):
        h = SimHost("a", "710")
        assert h.speed("lb", 2, 0.0) == pytest.approx(0.84 * 39132.0)


class TestPaperSimCluster:
    def test_composition_and_order(self):
        hosts = paper_sim_cluster()
        assert len(hosts) == 25
        assert [h.model for h in hosts[:16]] == ["715/50"] * 16
        assert [h.model for h in hosts[16:22]] == ["720"] * 6
        assert [h.model for h in hosts[22:]] == ["710"] * 3

    def test_traces_injected(self):
        hosts = paper_sim_cluster(
            {"hp715-03": LoadTrace.busy_from(60.0)}
        )
        busy = next(h for h in hosts if h.name == "hp715-03")
        assert busy.load_at(61.0) == 2.0
