"""§5.2 state-save sharing model."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster import simultaneous_save, staggered_save


class TestSimultaneous:
    def test_total_time(self):
        # 20 procs x 2 MB at 1.25 MB/s: 32 s of continuous occupation
        plan = simultaneous_save(20, 2e6, 1.25e6)
        assert plan.total_time == pytest.approx(32.0)
        assert plan.max_busy_stretch == pytest.approx(32.0)
        assert plan.free_fraction == 0.0

    def test_transfers_back_to_back(self):
        plan = simultaneous_save(3, 1e6, 1e6)
        assert plan.per_process == ((0.0, 1.0), (1.0, 2.0), (2.0, 3.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            simultaneous_save(0, 1e6, 1e6)
        with pytest.raises(ValueError):
            simultaneous_save(2, 0, 1e6)


class TestStaggered:
    def test_paper_numbers(self):
        """'A saving operation that would take 30 seconds [...] now
        takes 60-90 seconds but leaves free time slots.'"""
        simo = simultaneous_save(20, 1.875e6, 1.25e6)  # ~30 s
        assert simo.total_time == pytest.approx(30.0)
        for gap in (1.0, 2.0):
            stag = staggered_save(20, 1.875e6, 1.25e6, gap_fraction=gap)
            assert 60.0 * 0.95 <= stag.total_time <= 90.0 * 1.05
            assert stag.free_fraction > 0.4
            # the network is never "frozen" for longer than one dump
            assert stag.max_busy_stretch == pytest.approx(1.5)

    def test_gap_zero_equals_simultaneous_duration(self):
        stag = staggered_save(5, 1e6, 1e6, gap_fraction=0.0)
        simo = simultaneous_save(5, 1e6, 1e6)
        assert stag.total_time == pytest.approx(simo.total_time)
        # but the busy-stretch accounting still credits the ordering
        assert stag.max_busy_stretch < simo.max_busy_stretch

    def test_no_trailing_gap(self):
        plan = staggered_save(2, 1e6, 1e6, gap_fraction=1.0)
        assert plan.total_time == pytest.approx(3.0)  # t, gap, t

    @given(
        st.integers(1, 40),
        st.floats(1e5, 1e7),
        st.floats(0.0, 3.0),
    )
    def test_invariants(self, n, nbytes, gap):
        plan = staggered_save(n, nbytes, 1.25e6, gap_fraction=gap)
        simo = simultaneous_save(n, nbytes, 1.25e6)
        # staggering never saves wall time ...
        assert plan.total_time >= simo.total_time - 1e-9
        # ... but never increases the frozen stretch
        assert plan.max_busy_stretch <= simo.max_busy_stretch + 1e-9
        assert 0.0 <= plan.free_fraction < 1.0
        # transfers are disjoint and ordered
        for (a0, a1), (b0, b1) in zip(plan.per_process,
                                      plan.per_process[1:]):
            assert a1 <= b0 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            staggered_save(2, 1e6, 1e6, gap_fraction=-0.1)
