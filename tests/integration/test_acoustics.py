"""Acoustic-wave integration tests: the fast time scale of eq. 4.

Subsonic flow couples slow hydrodynamics with acoustic waves moving at
c_s; resolving them is why the paper uses explicit methods with
``c_s dt ~ dx``.  These tests verify wave propagation, reflection, and
the §7 statement that "the two methods produce comparable results for
the same resolution in space and time".
"""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FDMethod,
    FluidParams,
    LBMethod,
    acoustic_frequency,
    standing_wave,
)
from tests.conftest import rest_fields


def _wave_sim(method_cls, nx=64, ny=8, nu=1e-3, amplitude=1e-4,
              blocks=(1, 1)):
    params = FluidParams.lattice(2, nu=nu)
    x = np.arange(nx, dtype=float) + 0.5
    rho, _ = standing_wave(x, 0.0, float(nx), 1, amplitude, 1.0, params.cs)
    fields = rest_fields((nx, ny))
    fields["rho"] = np.repeat(rho[:, None], ny, axis=1)
    d = Decomposition((nx, ny), blocks, periodic=(True, True))
    return Simulation(method_cls(params, 2), d, fields), params


def _modal_amplitude(sim, nx):
    drho = sim.global_field("rho")[:, 2] - 1.0
    basis = np.cos(2 * np.pi * (np.arange(nx) + 0.5) / nx)
    return 2.0 * float(np.dot(drho, basis)) / nx


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
class TestStandingWave:
    def test_full_period_returns(self, method_cls):
        nx = 64
        sim, params = _wave_sim(method_cls, nx)
        a0 = _modal_amplitude(sim, nx)
        period = 2 * np.pi / acoustic_frequency(float(nx), 1, params.cs)
        sim.step(int(round(period)))
        a1 = _modal_amplitude(sim, nx)
        assert a1 == pytest.approx(a0, rel=0.1)

    def test_half_period_inverts(self, method_cls):
        nx = 64
        sim, params = _wave_sim(method_cls, nx)
        a0 = _modal_amplitude(sim, nx)
        period = 2 * np.pi / acoustic_frequency(float(nx), 1, params.cs)
        sim.step(int(round(period / 2)))
        assert _modal_amplitude(sim, nx) == pytest.approx(-a0, rel=0.15)

    def test_wave_decomposition_invariant(self, method_cls):
        nx = 64
        serial, _ = _wave_sim(method_cls, nx)
        par, _ = _wave_sim(method_cls, nx, blocks=(4, 2))
        serial.step(150)
        par.step(150)
        np.testing.assert_array_equal(
            serial.global_field("rho"), par.global_field("rho")
        )


class TestMethodComparability:
    """§7: 'the two methods produce comparable results for the same
    resolution in space and time.'"""

    def test_wave_fields_agree(self):
        nx = 64
        fd, params = _wave_sim(FDMethod, nx)
        lb, _ = _wave_sim(LBMethod, nx)
        steps = 80
        fd.step(steps)
        lb.step(steps)
        a_fd = fd.global_field("rho")[:, 2] - 1.0
        a_lb = lb.global_field("rho")[:, 2] - 1.0
        # same wave, same phase: strongly correlated fields
        corr = float(
            np.dot(a_fd, a_lb)
            / (np.linalg.norm(a_fd) * np.linalg.norm(a_lb))
        )
        assert corr > 0.99
        # and amplitudes of the same magnitude (sampled near a node of
        # the oscillation, so allow a generous envelope)
        assert np.abs(a_fd).max() == pytest.approx(
            np.abs(a_lb).max(), rel=0.25
        )

    def test_channel_flow_agrees(self):
        from repro.fluids import channel_geometry
        from tests.conftest import channel_sim

        fd = channel_sim(FDMethod, shape=(8, 15), nu=0.1, g=1e-6)
        lb = channel_sim(LBMethod, shape=(8, 15), nu=0.1, g=1e-6)
        fd.step(3000)
        lb.step(3000)
        u_fd = fd.global_field("u")[4]
        u_lb = lb.global_field("u")[4]
        # identical physics once each method's wall placement is
        # honoured: u_max scales as H^2, with H = ny-1 for FD (wall on
        # the solid node) and ny-2 for LB (halfway bounce-back)
        ny = 15
        ratio = u_fd.max() / u_lb.max()
        expected = ((ny - 1.0) / (ny - 2.0)) ** 2
        assert ratio == pytest.approx(expected, rel=0.02)


class TestWallReflection:
    def test_pulse_reflects_off_wall(self):
        """A density pulse launched at a wall comes back (the physics
        the resonant pipe depends on)."""
        nx, ny = 96, 8
        params = FluidParams.lattice(2, nu=2e-3)
        solid = np.zeros((nx, ny), dtype=bool)
        solid[0, :] = solid[-1, :] = True  # walls at both x ends
        fields = rest_fields((nx, ny))
        x = np.arange(nx)
        fields["rho"] += 1e-3 * np.exp(
            -((x - 20.0) ** 2) / 18.0
        )[:, None]
        sim = Simulation(
            LBMethod(params, 2),
            Decomposition((nx, ny), (2, 1), periodic=(False, True),
                          solid=solid),
            fields,
            solid,
        )
        # the pulse splits; the left-goer reflects off x=0 and returns
        # to the launch point after ~ 2*20/cs steps
        travel = int(2 * 20 / params.cs)
        sim.step(travel)
        drho = sim.global_field("rho")[:, 4] - 1.0
        peak = int(np.argmax(drho[1:-1])) + 1
        assert abs(peak - 20) <= 6
        assert drho[peak] > 2e-4  # a real reflected pulse, not noise
