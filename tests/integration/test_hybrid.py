"""Hybrid FD-LB coupled runs (the v2 region-aware ProblemSpec).

The acceptance bar of the hybrid redesign: a channel split into an FD
subregion and an LB subregion converges to the same steady Poiseuille
profile as either method alone (within the single-method tolerance),
conserves mass, runs bit-identically serial vs threaded, and survives a
checkpoint/resume bit-exactly.
"""

import numpy as np
import pytest

import repro
from repro.core import Simulation
from repro.distrib import ProblemSpec
from repro.distrib.initprog import initial_fields
from repro.fluids import poiseuille_profile, total_mass


def _spec(method, grid=(32, 24), blocks=(2, 1), nu=0.1, g=1e-5,
          filter_eps=0.0):
    ndim = len(grid)
    return ProblemSpec(
        method=method,
        grid_shape=grid,
        blocks=blocks,
        periodic=(True,) + (False,) * (ndim - 1),
        params={
            "nu": nu,
            "gravity": (g,) + (0.0,) * (ndim - 1),
            "filter_eps": filter_eps,
        },
        geometry={"kind": "channel"},
    )


#: Seam across the flow direction: upstream half LB, downstream half FD.
HYBRID_X = {
    "default": "lb",
    "regions": [{"box": [[16, 0], [32, 24]], "method": "fd"}],
}

#: Seam across the channel: bottom wall side LB, top wall side FD.
HYBRID_Y = {
    "default": "lb",
    "regions": [{"box": [[0, 16], [16, 32]], "method": "fd"}],
}


def _build_sim(spec) -> Simulation:
    """A serial hybrid Simulation straight from the spec."""
    from repro.fluids.coupling import build_converters

    decomp = spec.build_decomposition()
    methods = spec.build_methods()
    solid, _, _ = spec.build_geometry()
    return Simulation(
        list(methods),
        decomp,
        initial_fields(spec, "rest"),
        solid,
        converters=build_converters(decomp, methods),
    )


class TestBackendEquivalence:
    def test_serial_matches_threaded_bitwise(self):
        spec = _spec(HYBRID_X)
        serial = repro.run(spec, "serial", steps=50)
        threaded = repro.run(spec, "threaded", steps=50)
        for name in ("rho", "u", "v"):
            assert np.array_equal(serial.fields[name],
                                  threaded.fields[name]), name

    def test_hybrid_returns_common_fields_only(self):
        """The LB populations are method-private: the reassembled
        global state is the macroscopic rho, V every method evolves."""
        r = repro.run(_spec(HYBRID_X), "serial", steps=5)
        assert sorted(r.fields) == ["rho", "u", "v"]
        assert all(np.isfinite(a).all() for a in r.fields.values())

    def test_uniform_spec_unaffected_by_redesign(self):
        """A v1 string spec runs through the same entry point with the
        single-method fast path."""
        r = repro.run(_spec("lb"), "serial", steps=10)
        assert sorted(r.fields) == ["f", "rho", "u", "v"]


class TestConservation:
    def test_mass_drift_stays_at_truncation_level(self):
        """The ghost-conversion seam is consistent but not discretely
        conservative: each side reconstructs the other's state instead
        of exchanging a matched flux.  The residual is truncation-sized
        (~1e-9 relative per step here, vs exact-to-rounding for either
        method alone) — pin it so a sign error in the converters, which
        shows up orders of magnitude above this, cannot slip through."""
        sim = _build_sim(_spec(HYBRID_X))
        m0 = total_mass(sim.global_field("rho"))
        sim.step(300)
        assert total_mass(sim.global_field("rho")) == pytest.approx(
            m0, rel=1e-6
        )


class TestCheckpoint:
    def test_save_resume_is_bit_exact(self, tmp_path):
        """Checkpoint mid-run, keep stepping; a fresh hybrid sim
        resumed from the dump lands on identical bits."""
        spec = _spec(HYBRID_X)
        sim = _build_sim(spec)
        sim.step(20)
        sim.save(tmp_path)
        sim.step(15)

        other = _build_sim(spec)
        other.resume(tmp_path)
        assert other.step_count == 20
        other.step(15)
        for name in ("rho", "u", "v"):
            assert np.array_equal(sim.global_field(name),
                                  other.global_field(name)), name


@pytest.mark.slow
class TestPoiseuille:
    """§7 validation flow with the method seam mid-channel.

    The seam sits parallel to the flow, so the converted strip carries
    the full shear of the parabola — the hardest orientation for the
    non-equilibrium reconstruction.  At ny=32 the measured seam defect
    is ~3.6e-3 of the centerline velocity, inside the single-method
    5e-3 tolerance (and it shrinks as 1/ny^2).
    """

    def _profile_error(self, spec, ny, g, nu, steps=12000):
        sim = _build_sim(spec)
        sim.step(steps)
        u = sim.global_field("u")[4]
        # Bottom wall is LB (halfway bounce-back, wall at y=0 with
        # y_j = j - 0.5); top wall is FD (no-slip at the wall node,
        # y = ny - 1.5).
        y = np.arange(ny, dtype=float) - 0.5
        exact = poiseuille_profile(y, ny - 1.5, g, nu)
        fl = slice(1, ny - 1)
        return np.abs(u[fl] - exact[fl]).max() / exact.max()

    def test_seam_parallel_to_flow_hits_single_method_tolerance(self):
        nu, g = 0.1, 1e-5
        spec = _spec(HYBRID_Y, grid=(16, 32), blocks=(1, 2), nu=nu, g=g)
        assert self._profile_error(spec, 32, g, nu) < 5e-3
