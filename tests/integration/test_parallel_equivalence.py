"""THE core correctness property of the whole system (paper §4.2):

because computation is separated from communication by the ghost
padding, a decomposed run must reproduce the serial program *bit for
bit* — for both numerical methods, in 2D and 3D, with and without the
filter, with walls, openings and inactive subregions.
"""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FDMethod,
    FluidParams,
    LBMethod,
    channel_geometry,
    flue_pipe,
)
from tests.conftest import perturbed_fields, rest_fields


def _run(method_cls, shape, blocks, periodic, solid, fields, steps,
         filter_eps=0.02, g=None, inlets=(), outlets=()):
    ndim = len(shape)
    gravity = g if g is not None else (0.0,) * ndim
    params = FluidParams.lattice(
        ndim, nu=0.08, gravity=gravity, filter_eps=filter_eps
    )
    method = method_cls(params, ndim, inlets=inlets, outlets=outlets)
    d = Decomposition(shape, blocks, periodic=periodic, solid=solid)
    sim = Simulation(method, d, fields, solid)
    sim.step(steps)
    return sim


def _assert_bitwise(sim_a, sim_b, names):
    for name in names:
        a, b = sim_a.global_field(name), sim_b.global_field(name)
        assert np.array_equal(a, b), f"field {name!r} diverged"


CASES_2D = [
    pytest.param((2, 2), id="2x2"),
    pytest.param((4, 1), id="4x1"),
    pytest.param((1, 3), id="1x3"),
    pytest.param((3, 2), id="3x2"),
]


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
@pytest.mark.parametrize("blocks", CASES_2D)
class TestChannel2D:
    """Periodic channel with walls, body force and filter."""

    def test_bitwise(self, method_cls, blocks):
        shape = (36, 28)
        solid = channel_geometry(shape)
        fields = perturbed_fields(shape, seed=11)
        periodic = (True, False)
        kw = dict(g=(1e-5, 0.0))
        serial = _run(method_cls, shape, (1, 1), periodic, solid, fields,
                      steps=30, **kw)
        par = _run(method_cls, shape, blocks, periodic, solid, fields,
                   steps=30, **kw)
        _assert_bitwise(serial, par, serial.method.field_names)


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
@pytest.mark.parametrize("filter_eps", [0.0, 0.02], ids=["nofilt", "filt"])
def test_fully_periodic_2d(method_cls, filter_eps):
    shape = (30, 24)
    fields = perturbed_fields(shape, seed=3)
    periodic = (True, True)
    serial = _run(method_cls, shape, (1, 1), periodic, None, fields,
                  steps=25, filter_eps=filter_eps)
    par = _run(method_cls, shape, (2, 3), periodic, None, fields,
               steps=25, filter_eps=filter_eps)
    _assert_bitwise(serial, par, serial.method.field_names)


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
@pytest.mark.parametrize(
    "blocks", [(2, 1, 1), (2, 2, 1), (2, 2, 2), (1, 1, 3)],
    ids=lambda b: "x".join(map(str, b)),
)
def test_duct_3d(method_cls, blocks):
    shape = (18, 14, 12)
    solid = channel_geometry(shape)
    fields = perturbed_fields(shape, seed=7)
    periodic = (True, False, False)
    kw = dict(g=(1e-5, 0.0, 0.0))
    serial = _run(method_cls, shape, (1, 1, 1), periodic, solid, fields,
                  steps=12, **kw)
    par = _run(method_cls, shape, blocks, periodic, solid, fields,
               steps=12, **kw)
    _assert_bitwise(serial, par, serial.method.field_names)


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
def test_flue_pipe_with_openings(method_cls):
    """The full problem: walls, a ramped jet inlet, a pressure outlet,
    and the filter — decomposed (3, 2) vs serial."""
    shape = (96, 64)
    setup = flue_pipe(shape, jet_speed=0.08, ramp_steps=20)
    fields = rest_fields(shape)
    kw = dict(inlets=[setup.inlet], outlets=[setup.outlet])
    serial = _run(method_cls, shape, (1, 1), (False, False), setup.solid,
                  fields, steps=40, **kw)
    par = _run(method_cls, shape, (3, 2), (False, False), setup.solid,
               fields, steps=40, **kw)
    _assert_bitwise(serial, par, serial.method.field_names)
    # and the jet actually does something
    assert np.abs(serial.global_field("u")).max() > 0.01


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
def test_inactive_subregions_fig2(method_cls):
    """Decomposition with entirely solid (inactive) subregions still
    matches the serial run on every active node (fig. 2's layout)."""
    shape = (48, 32)
    solid = np.zeros(shape, dtype=bool)
    solid[:24, :16] = True  # one quadrant is all wall
    solid[:, 0] = solid[:, -1] = True
    solid[0, :] = solid[-1, :] = True
    fields = perturbed_fields(shape, seed=9)
    d_par = Decomposition(shape, (2, 2), solid=solid)
    assert d_par.n_active == 3
    serial = _run(method_cls, shape, (1, 1), (False, False), solid, fields,
                  steps=25)
    params = FluidParams.lattice(2, nu=0.08, filter_eps=0.02)
    par = Simulation(method_cls(params, 2), d_par, fields, solid)
    par.step(25)
    active = np.zeros(shape, dtype=bool)
    for blk in d_par.active_blocks():
        active[blk.slices] = True
    # Compare where values are physically meaningful: fluid nodes, plus
    # solid nodes adjacent to fluid (whose density the wall rule pins).
    # Deep-in-the-wall nodes hold unread don't-care values that the
    # serial program computes and the parallel program freezes.
    fluid = active & ~solid
    near_wall = solid & (
        np.roll(~solid, 1, 0) | np.roll(~solid, -1, 0)
        | np.roll(~solid, 1, 1) | np.roll(~solid, -1, 1)
    ) & active
    for name in serial.method.field_names:
        a = serial.global_field(name)
        b = par.global_field(name)
        assert np.array_equal(a[..., fluid], b[..., fluid]), name
        assert np.array_equal(a[..., near_wall], b[..., near_wall]), name


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
def test_decompositions_agree_with_each_other(method_cls):
    """Any two decompositions produce identical results — parallelism
    is invisible to the physics."""
    shape = (32, 32)
    fields = perturbed_fields(shape, seed=13)
    a = _run(method_cls, shape, (2, 2), (True, True), None, fields, 20)
    b = _run(method_cls, shape, (4, 2), (True, True), None, fields, 20)
    _assert_bitwise(a, b, a.method.field_names)
