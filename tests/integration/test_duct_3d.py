"""3D rectangular-duct validation against the exact Fourier solution.

The 3D counterpart of the §7 Hagen-Poiseuille validation: the grids of
figs. 9-11 are ducts of 10^3..44^3 nodes.  Both methods must approach
the exact series solution with their respective wall placements.
"""

import numpy as np
import pytest

from repro.fluids import FDMethod, LBMethod, duct_profile
from tests.conftest import channel_sim

pytestmark = pytest.mark.slow


def _duct_error(method_cls, n, steps, nu=0.08, g=1e-6):
    sim = channel_sim(method_cls, shape=(6, n, n), nu=nu, g=g)
    sim.step(steps)
    u = sim.global_field("u")[3]
    offset = 0.0 if method_cls is FDMethod else 0.5
    j = np.arange(n, dtype=float)
    y = (j - offset)[:, None]
    z = (j - offset)[None, :]
    span = (n - 1.0) if offset == 0.0 else (n - 2.0)
    exact = duct_profile(y, z, span, span, g, nu)
    fluid = np.zeros((n, n), dtype=bool)
    fluid[1:-1, 1:-1] = True
    return float(np.abs(u[fluid] - exact[fluid]).max() / exact.max())


def test_fd_duct_accuracy():
    assert _duct_error(FDMethod, 13, 2500) < 1e-2


def test_lb_duct_accuracy():
    assert _duct_error(LBMethod, 13, 2500) < 5e-2


def test_lb_duct_error_shrinks_with_resolution():
    coarse = _duct_error(LBMethod, 9, 1500)
    fine = _duct_error(LBMethod, 15, 3500)
    assert fine < coarse


def test_methods_agree_on_flow_rate():
    """§7: comparable results at the same resolution — the volumetric
    flow rates match once each method's wall placement is honoured."""
    n, nu, g = 13, 0.08, 1e-6
    fd = channel_sim(FDMethod, shape=(6, n, n), nu=nu, g=g)
    lb = channel_sim(LBMethod, shape=(6, n, n), nu=nu, g=g)
    fd.step(2500)
    lb.step(2500)
    q_fd = float(fd.global_field("u")[3].sum())
    q_lb = float(lb.global_field("u")[3].sum())
    # exact flow rates for the two effective duct sizes
    def q_exact(span, offset):
        j = np.arange(n, dtype=float)
        y = (j - offset)[:, None]
        z = (j - offset)[None, :]
        u = duct_profile(y, z, span, span, g, nu)
        u[0, :] = u[-1, :] = u[:, 0] = u[:, -1] = 0.0
        return float(u.sum())

    assert q_fd / q_exact(n - 1.0, 0.0) == pytest.approx(1.0, abs=0.03)
    assert q_lb / q_exact(n - 2.0, 0.5) == pytest.approx(1.0, abs=0.06)
