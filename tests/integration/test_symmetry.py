"""Physics symmetry properties of the solvers (hypothesis-driven).

Discrete translation invariance and parity are symmetries of the
*continuous* equations that the discretizations preserve exactly on
periodic domains — per-node stencil arithmetic commutes with rolling
the arrays, so a shifted initial condition must evolve into the shifted
solution, bit for bit.  These are unusually sharp oracles: any indexing
bug, any asymmetric stencil, any spurious coupling breaks them.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Decomposition, Simulation
from repro.fluids import FDMethod, FluidParams, LBMethod


def _periodic_sim(method_cls, fields, filter_eps=0.02):
    shape = fields["rho"].shape
    params = FluidParams.lattice(2, nu=0.06, filter_eps=filter_eps)
    d = Decomposition(shape, (1, 1), periodic=(True, True))
    return Simulation(method_cls(params, 2), d, fields)


def _random_fields(seed, shape=(24, 20), amp=1e-3):
    rng = np.random.default_rng(seed)
    return {
        "rho": 1.0 + amp * (rng.random(shape) - 0.5),
        "u": 0.1 * amp * (rng.random(shape) - 0.5),
        "v": 0.1 * amp * (rng.random(shape) - 0.5),
    }


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
class TestTranslationInvariance:
    @given(st.integers(0, 20), st.integers(-8, 8), st.integers(-8, 8))
    @settings(max_examples=6, deadline=None)
    def test_roll_commutes_with_evolution(self, method_cls, seed, sx, sy):
        fields = _random_fields(seed)
        rolled = {
            k: np.roll(np.roll(v, sx, axis=0), sy, axis=1)
            for k, v in fields.items()
        }
        a = _periodic_sim(method_cls, fields)
        b = _periodic_sim(method_cls, rolled)
        a.step(12)
        b.step(12)
        for name in ("rho", "u", "v"):
            expect = np.roll(
                np.roll(a.global_field(name), sx, axis=0), sy, axis=1
            )
            np.testing.assert_array_equal(b.global_field(name), expect)


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
class TestParity:
    def test_mirror_x(self, method_cls):
        """Flipping x and negating u is a symmetry of the equations;
        the discrete evolution must respect it exactly."""
        fields = _random_fields(3)
        mirrored = {
            "rho": fields["rho"][::-1].copy(),
            "u": -fields["u"][::-1].copy(),
            "v": fields["v"][::-1].copy(),
        }
        a = _periodic_sim(method_cls, fields)
        b = _periodic_sim(method_cls, mirrored)
        a.step(12)
        b.step(12)
        # Reflection reverses the summation order inside the stencils,
        # so (unlike translation, which is bit-exact) parity holds to
        # rounding: tolerances far below any physical signal.
        kw = dict(rtol=1e-9, atol=1e-16)
        np.testing.assert_allclose(
            b.global_field("rho"), a.global_field("rho")[::-1], **kw
        )
        np.testing.assert_allclose(
            b.global_field("u"), -a.global_field("u")[::-1], **kw
        )
        np.testing.assert_allclose(
            b.global_field("v"), a.global_field("v")[::-1], **kw
        )

    def test_rest_state_is_fixed_point(self, method_cls):
        fields = {
            "rho": np.ones((16, 12)),
            "u": np.zeros((16, 12)),
            "v": np.zeros((16, 12)),
        }
        sim = _periodic_sim(method_cls, fields)
        sim.step(20)
        # LB reconstructs rho = sum w_i each step; 1/9 is inexact in
        # binary, so "exactly 1" holds only to round-off there.
        np.testing.assert_allclose(
            sim.global_field("rho"), 1.0, rtol=1e-13
        )
        assert np.abs(sim.global_field("u")).max() < 1e-15
        assert np.abs(sim.global_field("v")).max() < 1e-15


class TestCheckpointRestart:
    """Simulation.save / Simulation.resume: bit-exact continuation."""

    def _sim(self):
        fields = _random_fields(9)
        params = FluidParams.lattice(2, nu=0.06, filter_eps=0.02)
        d = Decomposition((24, 20), (2, 2), periodic=(True, True))
        return Simulation(LBMethod(params, 2), d, fields)

    def test_resume_continues_bitwise(self, tmp_path):
        a = self._sim()
        a.step(10)
        a.save(tmp_path)
        a.step(10)  # ground truth: 20 uninterrupted steps

        b = self._sim()
        b.resume(tmp_path)
        assert b.step_count == 10
        b.step(10)
        for name in ("rho", "u", "v", "f"):
            assert np.array_equal(
                a.global_field(name), b.global_field(name)
            ), name

    def test_resume_rejects_wrong_layout(self, tmp_path):
        a = self._sim()
        a.save(tmp_path)
        params = FluidParams.lattice(2, nu=0.06, filter_eps=0.02)
        other = Simulation(
            LBMethod(params, 2),
            Decomposition((24, 20), (4, 1), periodic=(True, True)),
            _random_fields(9),
        )
        with pytest.raises((ValueError, FileNotFoundError)):
            other.resume(tmp_path)
