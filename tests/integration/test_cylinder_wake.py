"""Vortex shedding past a cylinder: unsteady subsonic flow end to end.

The same physics that drives the flue pipe (periodic vorticity shedding
coupled to the acoustic field) in its canonical benchmark form.  The
shedding frequency is checked against the literature Strouhal number.
"""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FluidParams,
    GlobalBox,
    LBMethod,
    Probe,
    cylinder_channel,
    dominant_frequency,
    vorticity_2d,
)

pytestmark = pytest.mark.slow


def _wake_sim(nx=160, u0=0.08, re=120.0):
    ny = nx // 2
    solid = cylinder_channel((nx, ny), radius_frac=0.08)
    diameter = 2 * 0.08 * ny
    nu = u0 * diameter / re
    g = 16.0 * nu * u0 / (ny - 2.0) ** 2
    params = FluidParams.lattice(2, nu=nu, gravity=(g, 0.0),
                                 filter_eps=0.01)
    fields = {
        "rho": np.ones((nx, ny)),
        "u": np.full((nx, ny), u0),
        "v": 1e-3 * u0 * np.sin(
            np.linspace(0, 2 * np.pi, nx)
        )[:, None] * np.ones((1, ny)),
    }
    fields["u"][solid] = 0.0
    fields["v"][solid] = 0.0
    sim = Simulation(
        LBMethod(params, 2),
        Decomposition((nx, ny), (4, 1), periodic=(True, False),
                      solid=solid),
        fields,
        solid,
    )
    return sim, solid, diameter


def test_vortex_street_and_strouhal():
    sim, solid, diameter = _wake_sim()
    nx, ny = solid.shape
    px = int(0.25 * nx + diameter * 1.5)
    py = int(0.5 * ny + diameter * 0.5)
    probe = Probe(GlobalBox((px, py), (px + 2, py + 2)), name="v")

    sim.step(1500)
    probe.run(sim, steps=2500, every=5)

    u = sim.global_field("u")
    v = sim.global_field("v")
    assert np.isfinite(u).all() and np.isfinite(v).all()

    # the wake oscillates: the cross-stream probe has a real signal
    swing = probe.signal.max() - probe.signal.min()
    assert swing > 1e-3

    # vorticity of both signs behind the cylinder
    w = vorticity_2d(u, v)
    w[solid] = 0.0
    wake = w[int(0.3 * nx):, :]
    assert (wake > 0.005).any() and (wake < -0.005).any()

    # Strouhal number in the physical ballpark (literature ~0.2 over a
    # wide Re range; generous window for the short run)
    u_mean = float(u[~solid].mean())
    f_shed = dominant_frequency(probe.signal, dt=probe.sample_period)
    st = f_shed * diameter / u_mean
    assert 0.10 < st < 0.32, f"Strouhal {st:.3f} out of range"


def test_wake_bitwise_across_decompositions():
    """The unsteady wake — extremely sensitive to round-off — still
    reproduces exactly under a different decomposition."""
    sim_a, solid, _ = _wake_sim(nx=96)
    d = Decomposition(solid.shape, (2, 2), periodic=(True, False),
                      solid=solid)
    # build b on a different decomposition from the identical initial state
    fields = {
        name: sim_a.global_field(name) for name in ("rho", "u", "v")
    }
    sim_b = Simulation(sim_a.method, d, fields, solid)
    sim_a.step(400)
    sim_b.step(400)
    for name in ("rho", "u", "v", "f"):
        assert np.array_equal(
            sim_a.global_field(name), sim_b.global_field(name)
        ), name
