"""Taylor-Green vortex: the exact decaying solution as a viscosity oracle.

The vortex array decays purely viscously (the nonlinear terms cancel),
so the measured kinetic-energy decay rate pins the solver's *effective*
viscosity — validating the FD momentum diffusion and the LB relation
``nu = (tau - 1/2)/3`` directly, independent of walls and forcing.
"""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FDMethod,
    FluidParams,
    LBMethod,
    kinetic_energy,
    taylor_green,
    taylor_green_decay_rate,
)


def _tg_sim(method_cls, n=48, nu=0.02, u0=0.01, blocks=(1, 1)):
    params = FluidParams.lattice(2, nu=nu)
    x = (np.arange(n, dtype=float) + 0.5)[:, None]
    y = (np.arange(n, dtype=float) + 0.5)[None, :]
    u, v = taylor_green(x, y, 0.0, float(n), u0, nu)
    fields = {
        "rho": np.ones((n, n)),
        "u": u * np.ones((n, n)),
        "v": v * np.ones((n, n)),
    }
    d = Decomposition((n, n), blocks, periodic=(True, True))
    return Simulation(method_cls(params, 2), d, fields), params


def _energy(sim):
    return kinetic_energy(
        sim.global_field("rho"),
        [sim.global_field("u"), sim.global_field("v")],
    )


@pytest.mark.parametrize("method_cls", [FDMethod, LBMethod],
                         ids=["fd", "lb"])
class TestDecayRate:
    def test_energy_decays_at_4_nu_k2(self, method_cls):
        n, nu = 48, 0.02
        sim, _ = _tg_sim(method_cls, n=n, nu=nu)
        e0 = _energy(sim)
        steps = 300
        sim.step(steps)
        e1 = _energy(sim)
        measured = -np.log(e1 / e0) / steps
        exact = taylor_green_decay_rate(float(n), nu)
        assert measured == pytest.approx(exact, rel=0.05)

    def test_rate_scales_with_viscosity(self, method_cls):
        n = 48

        def rate(nu):
            sim, _ = _tg_sim(method_cls, n=n, nu=nu)
            e0 = _energy(sim)
            sim.step(200)
            return -np.log(_energy(sim) / e0) / 200

        assert rate(0.04) == pytest.approx(2.0 * rate(0.02), rel=0.1)

    def test_velocity_field_shape_preserved(self, method_cls):
        """The vortex decays in amplitude but keeps its pattern (it is
        an eigenmode of the dynamics)."""
        n, nu = 48, 0.02
        sim, _ = _tg_sim(method_cls, n=n, nu=nu)
        u0_field = sim.global_field("u").copy()
        sim.step(250)
        u1_field = sim.global_field("u")
        corr = float(
            (u0_field * u1_field).sum()
            / np.sqrt((u0_field**2).sum() * (u1_field**2).sum())
        )
        assert corr > 0.999

    def test_decay_decomposition_invariant(self, method_cls):
        serial, _ = _tg_sim(method_cls, n=32)
        par, _ = _tg_sim(method_cls, n=32, blocks=(2, 2))
        serial.step(100)
        par.step(100)
        for name in ("rho", "u", "v"):
            np.testing.assert_array_equal(
                serial.global_field(name), par.global_field(name)
            )


class TestAnalyticForm:
    def test_divergence_free(self):
        n = 32
        x = np.arange(n, dtype=float)[:, None]
        y = np.arange(n, dtype=float)[None, :]
        u, v = taylor_green(x, y, 0.0, float(n), 0.01, 0.02)
        from repro.fluids import divergence

        div = divergence([u * np.ones((n, n)), v * np.ones((n, n))])
        assert np.abs(div[2:-2, 2:-2]).max() < 1e-4

    def test_decay_formula(self):
        x = np.array([[3.0]])
        y = np.array([[5.0]])
        u0, _ = taylor_green(x, y, 0.0, 32.0, 0.01, 0.05)
        ut, _ = taylor_green(x, y, 10.0, 32.0, 0.01, 0.05)
        k = 2 * np.pi / 32.0
        assert ut[0, 0] / u0[0, 0] == pytest.approx(
            np.exp(-2 * 0.05 * k * k * 10.0)
        )

    def test_energy_rate_is_twice_velocity_rate(self):
        assert taylor_green_decay_rate(32.0, 0.05) == pytest.approx(
            4.0 * 0.05 * (2 * np.pi / 32.0) ** 2
        )
