"""Lid-driven cavity (Hou et al. 1995) with diagnostics-driven stopping.

The canonical closed-box benchmark for the lattice Boltzmann method: a
square cavity, no-slip walls on three sides, the top row driven at a
constant horizontal velocity.  The run consumes its own global
diagnostics stream — the same in-flight records a distributed run logs —
to detect kinetic-energy steady state and stop early instead of marching
a fixed step count.
"""

import numpy as np
import pytest

from repro.core import Decomposition, ThreadedSimulation
from repro.distrib import DEFAULT_VMAX
from repro.fluids import FluidParams, GlobalBox, LBMethod, VelocityInlet

pytestmark = pytest.mark.slow

#: diagnostics cadence and the relative KE slope that counts as steady
DIAG_EVERY = 100
KE_TOL = 5e-5


def _cavity(n=32, u_lid=0.05, nu=0.1, blocks=(2, 2)):
    shape = (n, n)
    solid = np.zeros(shape, dtype=bool)
    solid[0, :] = solid[-1, :] = True   # side walls
    solid[:, 0] = True                  # floor
    solid[:, -1] = True                 # ceiling behind the lid row
    lid = VelocityInlet(GlobalBox((1, n - 2), (n - 1, n - 1)),
                        (u_lid, 0.0))
    params = FluidParams.lattice(2, nu=nu, gravity=(0.0, 0.0),
                                 filter_eps=0.01)
    fields = {"rho": np.ones(shape), "u": np.zeros(shape),
              "v": np.zeros(shape)}
    d = Decomposition(shape, blocks, periodic=(False, False), solid=solid)
    return ThreadedSimulation(LBMethod(params, 2, inlets=[lid]), d,
                              fields, solid, diag_every=DIAG_EVERY)


def _run_to_steady_state(sim, max_steps=6000):
    """Step until the diagnostics stream reports KE steady state."""
    prev_ke = None
    while sim.step_count < max_steps:
        sim.step(DIAG_EVERY)
        rec = sim.diagnostics[-1]
        if prev_ke is not None and rec.kinetic_energy > 0:
            rel = abs(rec.kinetic_energy - prev_ke) / rec.kinetic_energy
            if rel < KE_TOL:
                return rec
        prev_ke = rec.kinetic_energy
    return None


def test_cavity_converges_early_via_diagnostics():
    n, u_lid = 32, 0.05
    sim = _cavity(n=n, u_lid=u_lid)
    steady = _run_to_steady_state(sim, max_steps=6000)

    # the stream detected steady state well before the step budget
    assert steady is not None, "cavity never reached KE steady state"
    assert sim.step_count < 6000
    assert steady.step == sim.step_count
    # one record per DIAG_EVERY steps, none skipped
    assert [r.step for r in sim.diagnostics] == \
        list(range(DIAG_EVERY, sim.step_count + 1, DIAG_EVERY))

    # the run stayed physical throughout: finite, subsonic
    assert steady.n_nonfinite == 0
    assert 0 < steady.max_speed <= u_lid + 1e-12
    assert steady.max_speed < DEFAULT_VMAX
    assert steady.total_mass == pytest.approx((n - 2) ** 2, rel=0.05)

    # the classic single-vortex structure: the lid row moves at u_lid
    # and the return flow below it runs backwards
    u = sim.global_field("u")
    mid = n // 2
    assert u[mid, n - 2] == pytest.approx(u_lid, rel=1e-9)
    interior = u[1:-1, 1:-1]
    assert interior.min() < -0.1 * u_lid
    # net horizontal transport through the mid column ~ 0 (closed box)
    flux = u[mid, 1:-1].sum()
    assert abs(flux) < 0.1 * u_lid * n


def test_cavity_decomposition_invariant():
    """Steady-state KE must not depend on how the cavity is cut."""
    recs = {}
    for blocks in ((1, 1), (2, 2)):
        sim = _cavity(blocks=blocks)
        rec = _run_to_steady_state(sim)
        assert rec is not None
        recs[blocks] = rec
    a, b = recs[(1, 1)], recs[(2, 2)]
    # both stopped at the same diagnostics sample with identical physics
    assert a.step == b.step
    assert a.kinetic_energy == b.kinetic_energy
    assert a.max_speed == b.max_speed
