"""Distributed hybrid FD-LB runs: the seam over real sockets.

The method seam adds a pre-step ghost exchange whose two directions
carry *different* payloads (populations one way, macroscopic fields the
other).  These tests pin the property that matters: the wire protocol,
the per-rank phase scheduling, and the crash/checkpoint machinery are
all invisible to the numerics — a hybrid distributed run lands on the
serial program's bits, even through a worker kill and restart.
"""

import threading
import time

import numpy as np
import pytest

from repro.chaos.runner import serial_reference
from repro.distrib import (
    DistributedRun,
    ProblemSpec,
    RunSettings,
    initial_fields,
    run_distributed,
)

pytestmark = pytest.mark.slow

HYBRID = {
    "default": "lb",
    "regions": [{"box": [[16, 0], [32, 24]], "method": "fd"}],
}


def _spec(blocks=(2, 1)):
    return ProblemSpec(
        method=HYBRID,
        grid_shape=(32, 24),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.0},
        geometry={"kind": "channel"},
    )


def test_two_rank_hybrid_matches_serial(tmp_path):
    spec = _spec(blocks=(2, 1))
    fields = initial_fields(spec, "rest")
    ref = serial_reference(spec, steps=25)
    out = run_distributed(
        spec, fields, tmp_path / "run", RunSettings(steps=25)
    )
    for name in ("rho", "u", "v"):
        assert np.array_equal(out[name], ref[name]), name


def test_four_rank_hybrid_seam_inside_each_half(tmp_path):
    """blocks=(4,1): ranks 0-1 are LB, ranks 2-3 FD — the seam edge
    (1|2) coexists with same-method edges and the periodic 3|0 wrap."""
    spec = _spec(blocks=(4, 1))
    assert spec.methods_by_rank() == ("lb", "lb", "fd", "fd")
    fields = initial_fields(spec, "rest")
    ref = serial_reference(spec, steps=20)
    out = run_distributed(
        spec, fields, tmp_path / "run", RunSettings(steps=20)
    )
    for name in ("rho", "u", "v"):
        assert np.array_equal(out[name], ref[name]), name


def test_hybrid_crash_restarts_from_checkpoint(tmp_path):
    """Kill a worker mid-run on a 4-rank hybrid; the monitor's restart
    from the staggered checkpoints must reproduce the serial bits —
    i.e. the seam state is fully captured by the dumps."""
    spec = _spec(blocks=(4, 1))
    fields = initial_fields(spec, "rest")
    ref = serial_reference(spec, steps=40)
    run = DistributedRun(
        spec, fields, tmp_path / "run",
        RunSettings(steps=40, save_every=10, run_timeout=240),
    )
    mon = run.start()

    def kill_one():
        from repro.distrib import SaveTurns

        deadline = time.time() + 60
        while SaveTurns.latest_complete_step(tmp_path / "run") is None:
            if time.time() > deadline:  # pragma: no cover
                return
            time.sleep(0.05)
        # kill an LB-side rank adjacent to the seam
        mon.procs[1].kill()

    threading.Thread(target=kill_one).start()
    run.wait()
    out = run.collect()
    assert mon.restarts >= 1
    for name in ("rho", "u", "v"):
        assert np.array_equal(out[name], ref[name]), name


def test_hybrid_rejects_rebalance_policy(tmp_path):
    """policy='rebalance' would re-cut slabs and move the seam off its
    region boundary — refused loudly at startup."""
    from repro.balance import RecutError

    spec = _spec()
    fields = initial_fields(spec, "rest")
    run = DistributedRun(
        spec, fields, tmp_path / "run",
        RunSettings(steps=5, policy="rebalance"),
    )
    with pytest.raises(RecutError, match="hybrid"):
        run.start()
