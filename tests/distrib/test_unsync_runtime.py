"""App. A un-synchronization in the *real* distributed runtime.

A slowed worker (emulating a busy host) lets distant processes run
ahead, bounded by the dependency-graph diameter; the FCFS receive
buffering absorbs the early frames.  The heartbeats expose each
worker's step live, so the spread is directly observable — and the
final result must still equal the serial run bit for bit.
"""

import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    Decomposition,
    Simulation,
    max_unsync_steps,
    star_stencil,
)
from repro.distrib import (
    DistributedRun,
    ProblemSpec,
    RunSettings,
    initial_fields,
)
from repro.distrib.submit import spawn_worker
from repro.distrib.worker import WorkerConfig

pytestmark = pytest.mark.slow


def _read_hb(workdir: Path) -> dict[int, int]:
    out = {}
    hb = workdir / "hb"
    if not hb.exists():
        return out
    for p in hb.glob("rank*.txt"):
        try:
            out[int(p.stem[4:])] = int(p.read_text().split()[0])
        except (ValueError, IndexError, OSError):
            continue
    return out


def test_slow_worker_lets_neighbors_run_ahead(tmp_path):
    spec = ProblemSpec(
        method="lb",
        grid_shape=(48, 12),
        blocks=(4, 1),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )
    fields = initial_fields(spec, "rest")
    solid, _, _ = spec.build_geometry()
    serial = Simulation(
        spec.build_method(),
        Decomposition(spec.grid_shape, (1, 1), periodic=spec.periodic,
                      solid=solid),
        fields,
        solid,
    )
    steps = 60
    serial.step(steps)

    # slow-worker run: spawn the workers directly so rank 0 gets the
    # step_delay knob (DistributedRun's submit gives uniform configs)
    workdir = tmp_path / "run2"
    run2 = DistributedRun(
        spec, fields, workdir, RunSettings(steps=steps, run_timeout=240),
    )
    procs = {}
    for rank in range(run2.decomp.n_active):
        cfg = WorkerConfig(
            workdir=str(workdir),
            rank=rank,
            host=f"host{rank}",
            generation=0,
            steps_total=steps,
            hb_every=1,
            step_delay=0.03 if rank == 0 else 0.0,
        )
        procs[rank] = spawn_worker(cfg)

    spreads = []
    deadline = time.time() + 180
    while any(p.poll() is None for p in procs.values()):
        hb = _read_hb(workdir)
        if len(hb) == 4:
            spreads.append(max(hb.values()) - min(hb.values()))
        if time.time() > deadline:  # pragma: no cover
            for p in procs.values():
                p.kill()
            pytest.fail("slow-worker run timed out")
        time.sleep(0.01)
    for p in procs.values():
        assert p.wait() == 0

    bound = max_unsync_steps((4, 1), star_stencil(2))
    assert spreads, "no heartbeat samples collected"
    max_spread = max(spreads)
    # the fast workers genuinely ran ahead ...
    assert max_spread >= 1
    # ... but never past the dependency bound
    assert max_spread <= bound

    # and the answer is still exact
    from repro.core import assemble_global
    from repro.distrib import dump_path, load_dump

    subs = [
        load_dump(dump_path(workdir / "dumps", r, tag="final"))
        for r in range(4)
    ]
    for name in serial.method.field_names:
        got = assemble_global(run2.decomp, subs, name)
        assert np.array_equal(got, serial.global_field(name)), name
