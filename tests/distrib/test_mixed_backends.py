"""Mixed per-rank kernel backends on the live distributed runtime.

The acceptance test of the backend knob's end-to-end path: a 4-rank
run where each rank names its own kernel backend must survive a
worker kill plus checkpoint restart **bit-stable** — the restarted
incarnation rebuilds the very same per-rank kernel (WorkerConfig
carries the full ``backends`` list and each rank indexes it), so the
faulted run reproduces the fault-free one exactly.

On hosts without numba the non-numpy entries degrade to numpy inside
each worker; the selection machinery exercised is identical either
way, which is exactly the fallback contract.
"""

import dataclasses

import numpy as np
import pytest

import repro
from repro.chaos import Fault, FaultPlan
from repro.distrib import ProblemSpec, RunSettings
from repro.distrib.settings import worker_knob_names

#: one backend name per rank of the 2x2 decomposition below
MIXED = ["numpy", "numba", "numba-serial", "numpy"]


def _spec():
    return ProblemSpec(
        method="lb",
        grid_shape=(32, 24),
        blocks=(2, 2),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )


def _settings(steps=24, fault_plan="") -> RunSettings:
    return RunSettings(
        steps=steps,
        save_every=8,
        save_gap=0.0,
        step_delay=0.01,
        recv_timeout=3.0,
        sync_timeout=20.0,
        stall_timeout=6.0,
        run_timeout=120.0,
        monitor_poll=0.02,
        backends=list(MIXED),
        fault_plan=fault_plan,
    )


def test_backend_knobs_reach_worker_config():
    """The knob derivation must carry both backend fields to workers."""
    knobs = worker_knob_names()
    assert "backend" in knobs and "backends" in knobs
    s = RunSettings(steps=1, backend="numba", backends=["numpy", "numba"])
    base = s.worker_base_cfg()
    assert base["backend"] == "numba"
    assert base["backends"] == ["numpy", "numba"]


def test_settings_defaults_are_inert():
    s = RunSettings(steps=1)
    assert s.backend == "" and s.backends == []


def test_mixed_backends_bit_stable_across_restart(tmp_path):
    """kill rank 2 mid-run; the checkpoint restart must land on the
    same trajectory as the fault-free mixed-backend run."""
    plan = FaultPlan(
        seed=0, faults=(Fault(kind="kill", rank=2, step=13),)
    )
    clean = repro.run(
        _spec(), "distributed", _settings(),
        workdir=tmp_path / "clean",
    )
    faulted = repro.run(
        _spec(), "distributed", _settings(fault_plan=plan.to_json()),
        workdir=tmp_path / "faulted",
    )
    assert clean.fields is not None and faulted.fields is not None
    for name in clean.fields:
        assert np.array_equal(
            clean.fields[name], faulted.fields[name]
        ), f"field {name!r} diverged across the restart"


def test_short_backends_list_fails_loudly(tmp_path):
    """A backends list shorter than the rank count must abort the run
    with a diagnostic, not silently default some ranks."""
    from repro.distrib import MonitorError

    s = _settings(steps=10)
    s = dataclasses.replace(s, backends=["numpy", "numpy"])  # 4 ranks
    with pytest.raises(Exception) as excinfo:
        repro.run(_spec(), "distributed", s, workdir=tmp_path / "short")
    assert isinstance(excinfo.value, (MonitorError, RuntimeError))
