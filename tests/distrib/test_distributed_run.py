"""End-to-end distributed runs: real worker processes, real TCP, real
signals — asserted bit-for-bit against the serial program.

These are the system's acceptance tests; they are slower than the unit
tests (each spawns several Python subprocesses).
"""

import threading
import time

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.distrib import (
    DistributedRun,
    MonitorError,
    ProblemSpec,
    RunSettings,
    initial_fields,
    run_distributed,
)

pytestmark = pytest.mark.slow


def _spec(method="lb", blocks=(2, 2)):
    return ProblemSpec(
        method=method,
        grid_shape=(32, 24),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )


def _serial(spec, fields, steps):
    solid, _, _ = spec.build_geometry()
    d = Decomposition(
        spec.grid_shape, (1,) * spec.ndim, periodic=spec.periodic,
        solid=solid,
    )
    sim = Simulation(spec.build_method(), d, fields, solid)
    sim.step(steps)
    return sim


@pytest.mark.parametrize("method", ["lb", "fd"])
def test_distributed_matches_serial(tmp_path, method):
    spec = _spec(method)
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=25)
    out = run_distributed(
        spec, fields, tmp_path / "run", RunSettings(steps=25)
    )
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


def test_migration_preserves_bitwise_equality(tmp_path):
    """§5.1's dump -> rehost -> restart sequence must be invisible to
    the numerics."""
    spec = _spec()
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=50)
    run = DistributedRun(
        spec, fields, tmp_path / "run", RunSettings(steps=50,
                                                    run_timeout=240),
    )
    mon = run.start()
    threading.Timer(0.5, lambda: mon.request_migration(1)).start()
    run.wait()
    out = run.collect()
    assert mon.migrations >= 1
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


def test_load_triggered_migration(tmp_path):
    """The monitoring program migrates a rank off a host whose
    five-minute load exceeds 1.5 (§5.1)."""
    spec = _spec()
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=50)
    run = DistributedRun(
        spec, fields, tmp_path / "run", RunSettings(steps=50,
                                                    run_timeout=240),
    )
    mon = run.start()

    def make_busy():
        host = run.hostdb.host_of_rank(2)
        run.hostdb.set_load(host.name, load5=2.2)

    threading.Timer(0.5, make_busy).start()
    run.wait()
    out = run.collect()
    assert mon.migrations >= 1
    # the overloaded host no longer runs rank 2
    host = run.hostdb.host_of_rank(2)
    assert host.load5 < 1.5
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


def test_staggered_checkpoints_written(tmp_path):
    spec = _spec(blocks=(2, 1))
    fields = initial_fields(spec, "rest")
    run = DistributedRun(
        spec, fields, tmp_path / "run",
        RunSettings(steps=30, save_every=10, run_timeout=240),
    )
    run.start()
    run.wait()
    dumps = sorted(p.name for p in (tmp_path / "run" / "dumps").iterdir())
    assert "ckpt000000010_rank0000.npz" in dumps
    assert "ckpt000000020_rank0001.npz" in dumps
    from repro.distrib import SaveTurns

    assert SaveTurns.latest_complete_step(tmp_path / "run") == 30


def test_crash_restarts_from_checkpoint(tmp_path):
    """§4.1: 'if an unrecoverable error occurs, [...] a new simulation
    is started from the last state which is saved automatically'."""
    spec = _spec(blocks=(2, 1))
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=40)
    run = DistributedRun(
        spec, fields, tmp_path / "run",
        RunSettings(steps=40, save_every=10, run_timeout=240),
    )
    mon = run.start()

    def kill_one():
        # wait for the first complete checkpoint, then murder a worker
        from repro.distrib import SaveTurns

        deadline = time.time() + 60
        while SaveTurns.latest_complete_step(tmp_path / "run") is None:
            if time.time() > deadline:  # pragma: no cover
                return
            time.sleep(0.05)
        mon.procs[0].kill()

    threading.Thread(target=kill_one).start()
    run.wait()
    out = run.collect()
    assert mon.restarts >= 1
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


def test_udp_transport_matches_serial(tmp_path):
    """App. D: the datagram transport with explicit acknowledgment and
    retransmission computes the identical answer."""
    spec = _spec(blocks=(2, 2))
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=20)
    out = run_distributed(
        spec, fields, tmp_path / "run",
        RunSettings(steps=20, transport="udp"),
    )
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


def test_strict_order_communication_still_correct(tmp_path):
    """App. C: strict-order draining performs worse but must compute
    the same answer."""
    spec = _spec(blocks=(3, 1))
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=20)
    out = run_distributed(
        spec, fields, tmp_path / "run",
        RunSettings(steps=20, strict_order=True),
    )
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


def test_inactive_blocks_use_fewer_workers(tmp_path):
    """Fig. 2: all-solid subregions get no worker process."""
    spec = ProblemSpec(
        method="lb",
        grid_shape=(96, 64),
        blocks=(2, 4),
        periodic=(False, False),
        params={"nu": 0.1, "filter_eps": 0.02},
        geometry={"kind": "flue_pipe", "variant": "channel",
                  "jet_speed": 0.05},
    )
    d = spec.build_decomposition()
    assert d.n_active < d.n_blocks, "fixture geometry must have inactive blocks"
    fields = initial_fields(spec, "rest")
    run = DistributedRun(
        spec, fields, tmp_path / "run", RunSettings(steps=10),
    )
    mon = run.start()
    assert len(mon.procs) == d.n_active
    run.wait()
    out = run.collect()
    assert np.isfinite(out["rho"]).all()


def test_nonempty_workdir_rejected(tmp_path):
    spec = _spec()
    fields = initial_fields(spec, "rest")
    wd = tmp_path / "run"
    wd.mkdir()
    (wd / "junk").touch()
    with pytest.raises(ValueError, match="not empty"):
        DistributedRun(spec, fields, wd, RunSettings(steps=5))
