"""Live repartitioning: the rebalance epoch end-to-end, and the shared
planner contract between the cluster simulator and the runtime."""

import threading

import numpy as np
import pytest

from repro.balance import BalancePolicy, RebalancePlanner
from repro.core import Decomposition, Simulation
from repro.distrib import (
    DistributedRun,
    ProblemSpec,
    RunSettings,
    initial_fields,
)


def _spec():
    return ProblemSpec(
        method="lb",
        grid_shape=(48, 24),
        blocks=(4, 1),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )


def _serial(spec, fields, steps):
    solid, _, _ = spec.build_geometry()
    d = Decomposition(
        spec.grid_shape, (1,) * spec.ndim, periodic=spec.periodic,
        solid=solid,
    )
    sim = Simulation(spec.build_method(), d, fields, solid)
    sim.step(steps)
    return sim


@pytest.mark.slow
def test_rebalance_epoch_preserves_bitwise_equality(tmp_path):
    """A skewed host load triggers a rebalance epoch: all ranks dump,
    the monitor re-cuts the global state into weighted slabs, the
    workers restart — and the numerics never notice."""
    spec = _spec()
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=60)
    run = DistributedRun(
        spec, fields, tmp_path / "run",
        RunSettings(
            steps=60,
            run_timeout=240,
            policy="rebalance",
            balance_cooldown=30.0,   # one epoch is enough for the test
            balance_min_gain=0.0,
            step_delays=[0.02, 0.02, 0.02, 0.02],
        ),
    )
    mon = run.start()

    def make_busy():
        host = run.hostdb.host_of_rank(0)
        run.hostdb.set_load(host.name, load5=2.5)

    threading.Timer(0.7, make_busy).start()
    run.wait()
    out = run.collect()

    assert mon.rebalances >= 1
    # the sync-point dumps and the re-cut dumps are both on disk
    dumps = {p.name for p in (tmp_path / "run" / "dumps").iterdir()}
    assert "balance0000_rank0000.npz" in dumps
    assert "recut0000_rank0003.npz" in dumps
    # spec.json now carries the weighted decomposition...
    new_spec = ProblemSpec.load(tmp_path / "run" / "spec.json")
    assert new_spec.weights is not None
    shares = new_spec.weights[0]
    assert sum(shares) == 48
    # ...with the loaded rank's slab visibly thinner
    assert shares[0] == min(shares) and shares[0] < max(shares)
    # and the final state is bit-for-bit the serial program's
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


@pytest.mark.slow
def test_forced_rebalance_skips_gates_and_preserves_equality(tmp_path):
    """request_rebalance executes an epoch the amortization gate would
    reject (a short run cannot repay the repartition cost), cutting by
    the *measured* per-rank compute times — and the numerics hold."""
    spec = _spec()
    fields = initial_fields(spec, "rest")
    serial = _serial(spec, fields, steps=40)
    run = DistributedRun(
        spec, fields, tmp_path / "run",
        RunSettings(
            steps=40,
            run_timeout=240,
            policy="rebalance",
            balance_cooldown=60.0,
            # rank 2 computes 4x slower; min_gain=1.0 (default) keeps
            # the planner from acting on its own over 40 steps
            step_delays=[0.01, 0.01, 0.04, 0.01],
        ),
    )
    mon = run.start()
    threading.Timer(0.7, mon.request_rebalance).start()
    run.wait()
    out = run.collect()
    assert mon.rebalances == 1
    shares = ProblemSpec.load(tmp_path / "run" / "spec.json").weights[0]
    assert shares[2] == min(shares)
    for name in serial.method.field_names:
        assert np.array_equal(out[name], serial.global_field(name)), name


class TestSharedPlanner:
    """ISSUE 4: the simulator's 'rebalance' policy and the live monitor
    must consult the *same* planner implementation."""

    def test_simulator_accepts_live_planner(self):
        from repro.cluster import (
            ClusterSimulation,
            LoadTrace,
            paper_sim_cluster,
        )

        planner = RebalancePlanner(BalancePolicy(
            threshold=0.05, cooldown=0.0, min_gain=0.0,
            state_bytes_per_node=72.0, bandwidth=1.25e6,
        ))
        sim = ClusterSimulation(
            "lb", 2, (4, 1), 120,
            hosts=paper_sim_cluster(
                {"hp715-01": LoadTrace.busy_from(5.0, load=2.0)}
            ),
        )
        sim.run(steps=60, monitor_poll=2.0, policy="rebalance",
                planner=planner)
        assert sim.planner is planner
        assert len(planner.history) == len(sim.rebalances) >= 1

    def test_monitor_imports_the_same_planner_class(self):
        from repro.distrib import monitor as monitor_mod

        assert monitor_mod.RebalancePlanner is RebalancePlanner
        assert monitor_mod.BalancePolicy is BalancePolicy

    def test_run_settings_build_the_policy(self):
        pol = RunSettings(steps=10, balance_threshold=0.1,
                          balance_min_gain=2.0).balance_policy()
        assert isinstance(pol, BalancePolicy)
        assert pol.threshold == 0.1
        assert pol.min_gain == 2.0
