"""The submit program: spawn hygiene and all-or-nothing host booking."""

import os
import subprocess

import pytest

from repro.distrib import HostDB, WorkerConfig, paper_cluster
from repro.distrib import submit as submit_mod
from repro.distrib.submit import spawn_worker, submit_all


def _open_fds():
    return set(os.listdir("/proc/self/fd"))


@pytest.fixture
def db(tmp_path):
    d = HostDB(tmp_path / "hosts.json")
    d.initialize(paper_cluster())
    return d


class TestSpawnWorker:
    def test_no_fd_leak(self, tmp_path):
        """Respawn-heavy runs (migrations, rebalances) must not
        accumulate log-file descriptors in the submitting process."""
        cfg = WorkerConfig(
            workdir=str(tmp_path), rank=0, host="h0", steps_total=1
        )
        before = _open_fds()
        procs = [spawn_worker(cfg) for _ in range(5)]
        for p in procs:
            p.wait(timeout=30)
        after = _open_fds()
        assert after - before == set()

    def test_writes_config_and_log(self, tmp_path):
        cfg = WorkerConfig(
            workdir=str(tmp_path), rank=3, host="h3", steps_total=1
        )
        proc = spawn_worker(cfg)
        proc.wait(timeout=30)
        assert WorkerConfig.path(tmp_path, 3).exists()
        assert (tmp_path / "logs" / "rank0003.stdout").exists()


class TestSubmitAllRollback:
    def test_spawn_failure_rolls_back_assignments(
        self, tmp_path, db, monkeypatch
    ):
        """If rank k fails to spawn, ranks 0..k-1 are killed and every
        host booked for this run is released."""
        started = []
        real_spawn = submit_mod.spawn_worker

        def flaky(cfg):
            if cfg.rank == 2:
                raise OSError("out of processes")
            proc = real_spawn(cfg)
            started.append(proc)
            return proc

        monkeypatch.setattr(submit_mod, "spawn_worker", flaky)
        with pytest.raises(OSError):
            submit_all(tmp_path, db, 4, {"steps_total": 1})
        assert len(started) == 2
        for proc in started:
            assert proc.poll() is not None  # killed and reaped
        assert all(h.rank is None for h in db.hosts())

    def test_success_books_one_host_per_rank(self, tmp_path, db):
        procs = submit_all(tmp_path, db, 3, {"steps_total": 1})
        try:
            booked = [h for h in db.hosts() if h.rank is not None]
            assert sorted(h.rank for h in booked) == [0, 1, 2]
            assert sorted(procs) == [0, 1, 2]
        finally:
            for p in procs.values():
                p.kill()
            for p in procs.values():
                try:
                    p.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    pass
