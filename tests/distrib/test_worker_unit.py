"""Worker and monitor internals (no subprocesses)."""

import numpy as np
import os
import pytest

from repro.distrib import (
    EXIT_DONE,
    EXIT_MIGRATED,
    ProblemSpec,
    Worker,
    WorkerConfig,
    decompose_problem,
    initial_fields,
)
from repro.distrib.monitor import _proc_state


def _prepare(tmp_path, blocks=(2, 1), **cfg_kw):
    spec = ProblemSpec(
        method="lb",
        grid_shape=(24, 16),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1},
        geometry={"kind": "channel"},
    )
    fields = initial_fields(spec, "rest")
    decompose_problem(spec, fields, tmp_path)
    cfg = WorkerConfig(
        workdir=str(tmp_path), rank=0, host="virt0", steps_total=5,
        **cfg_kw,
    )
    return spec, cfg


class TestWorkerConfig:
    def test_json_roundtrip(self, tmp_path):
        cfg = WorkerConfig(
            workdir=str(tmp_path), rank=3, host="h", steps_total=100,
            save_every=10, strict_order=True, transport="udp",
        )
        back = WorkerConfig.from_json(cfg.to_json())
        assert back == cfg

    def test_path_naming(self, tmp_path):
        assert WorkerConfig.path(tmp_path, 7).name == "cfg_rank0007.json"

    def test_exit_codes(self):
        assert EXIT_DONE == 0
        assert EXIT_MIGRATED == 75  # EX_TEMPFAIL


class TestWorkerConstruction:
    def test_builds_from_dumps(self, tmp_path):
        _prepare(tmp_path)
        w = Worker(WorkerConfig(
            workdir=str(tmp_path), rank=0, host="virt0", steps_total=5,
        ))
        assert w.sub.block.rank == 0
        assert w.n_ranks == 2
        assert "f" in w.sub.fields  # method field restored from dump
        assert "filter_keep" in w.sub.aux  # aux rebuilt by init_subregion

    def test_rank_mismatch_detected(self, tmp_path):
        _prepare(tmp_path)
        from repro.distrib import dump_path

        with pytest.raises(RuntimeError, match="holds rank"):
            Worker(WorkerConfig(
                workdir=str(tmp_path), rank=1, host="h", steps_total=5,
                dump_in=str(dump_path(tmp_path / "dumps", 0)),
            ))

    def test_unknown_transport(self, tmp_path):
        _prepare(tmp_path)
        with pytest.raises(ValueError, match="transport"):
            Worker(WorkerConfig(
                workdir=str(tmp_path), rank=0, host="h", steps_total=5,
                transport="carrier-pigeon",
            ))

    def test_neighbor_discovery(self, tmp_path):
        _prepare(tmp_path)
        w = Worker(WorkerConfig(
            workdir=str(tmp_path), rank=0, host="h", steps_total=5,
        ))
        # periodic 2x1 chain: rank 1 on both sides, once
        assert w.channels.neighbors == [1]


class TestUsr2Handler:
    def test_wish_file_without_request(self, tmp_path):
        """A user's direct kill -USR2 leaves a wish for the monitor."""
        _prepare(tmp_path)
        w = Worker(WorkerConfig(
            workdir=str(tmp_path), rank=0, host="h", steps_total=5,
        ))
        w._usr2_handler(None, None)
        assert (tmp_path / "sync" / "wish_rank0000").exists()
        assert w._sync_epoch is None

    def test_sync_entry_with_request(self, tmp_path):
        """A monitor-initiated request makes the handler report its
        step (App. B phase 1)."""
        import json

        _prepare(tmp_path)
        w = Worker(WorkerConfig(
            workdir=str(tmp_path), rank=0, host="h", steps_total=5,
        ))
        req = tmp_path / "sync" / "epoch0000_request.json"
        req.parent.mkdir(exist_ok=True)
        req.write_text(json.dumps({"ranks": [0]}))
        w._usr2_handler(None, None)
        assert w._sync_epoch == 0
        from repro.distrib import SyncFiles

        assert SyncFiles(tmp_path, 0).has_written(0)

    def test_handler_idempotent(self, tmp_path):
        import json

        _prepare(tmp_path)
        w = Worker(WorkerConfig(
            workdir=str(tmp_path), rank=0, host="h", steps_total=5,
        ))
        req = tmp_path / "sync" / "epoch0000_request.json"
        req.parent.mkdir(exist_ok=True)
        req.write_text(json.dumps({"ranks": [0]}))
        w._usr2_handler(None, None)
        w._usr2_handler(None, None)  # double signal
        steps = (tmp_path / "sync" / "epoch0000_steps.txt").read_text()
        assert steps.count("\n") == 1


class TestProcState:
    def test_own_process_is_running(self):
        assert _proc_state(os.getpid()) in ("R", "S", "D")

    def test_missing_process(self):
        # PID 2^22 is above the default pid_max
        assert _proc_state(2**22 + 1) == "X"


class TestNiceness:
    def test_default_niceness(self):
        cfg = WorkerConfig(workdir="/tmp", rank=0, host="h",
                           steps_total=1)
        assert cfg.niceness == 10

    def test_spawned_worker_runs_niced(self, tmp_path):
        """§5.1: parallel subprocesses run at low priority so the
        regular user keeps interactive response."""
        import time

        from repro.distrib.submit import spawn_worker

        _prepare(tmp_path, blocks=(1, 1))
        # a (1,1) decomposition has no neighbours: the worker runs its
        # steps immediately and exits; sample its niceness while alive
        cfg = WorkerConfig(
            workdir=str(tmp_path), rank=0, host="h", steps_total=200,
        )
        proc = spawn_worker(cfg)
        try:
            nice_value = None
            deadline = time.time() + 30
            while time.time() < deadline and proc.poll() is None:
                try:
                    stat = open(f"/proc/{proc.pid}/stat").read()
                    nice_value = int(stat.rsplit(")", 1)[1].split()[16])
                    if nice_value == 10:
                        break
                except (OSError, IndexError, ValueError):
                    pass
                time.sleep(0.02)
            assert nice_value == 10
        finally:
            proc.kill()
            proc.wait()


class TestMonitorHeartbeats:
    def _monitor(self, tmp_path):
        from repro.distrib import HostDB, Monitor, paper_cluster

        db = HostDB(tmp_path / "hosts.json")
        db.initialize(paper_cluster())
        return Monitor(tmp_path, db, procs={}, base_cfg={})

    def test_reads_heartbeats(self, tmp_path):
        mon = self._monitor(tmp_path)
        hb = tmp_path / "hb"
        hb.mkdir()
        (hb / "rank0000.txt").write_text("42 123.0\n")
        (hb / "rank0003.txt").write_text("40 124.0\n")
        assert mon._read_heartbeats() == {0: 42, 3: 40}

    def test_missing_dir(self, tmp_path):
        mon = self._monitor(tmp_path)
        assert mon._read_heartbeats() == {}

    def test_garbage_files_ignored(self, tmp_path):
        mon = self._monitor(tmp_path)
        hb = tmp_path / "hb"
        hb.mkdir()
        (hb / "rank0001.txt").write_text("not a step\n")
        (hb / "rank0002.txt").write_text("")
        (hb / "rank0004.txt").write_text("7 1.0\n")
        assert mon._read_heartbeats() == {4: 7}
