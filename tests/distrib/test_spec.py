"""ProblemSpec serialization and reconstruction."""

import json

import numpy as np
import pytest

from repro.distrib import ProblemSpec, initial_fields
from repro.fluids import FDMethod, LBMethod


def _spec(**kw):
    base = dict(
        method="lb",
        grid_shape=(32, 24),
        blocks=(2, 2),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0)},
        geometry={"kind": "channel"},
    )
    base.update(kw)
    return ProblemSpec(**base)


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            _spec(method="spectral")

    def test_unknown_geometry(self):
        with pytest.raises(ValueError):
            _spec(geometry={"kind": "moebius"})


class TestRoundTrip:
    def test_json(self):
        spec = _spec()
        again = ProblemSpec.from_json(spec.to_json())
        assert again == spec

    def test_file(self, tmp_path):
        spec = _spec(method="fd", geometry={"kind": "flue_pipe",
                                            "jet_speed": 0.08})
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ProblemSpec.load(path) == spec

    def test_tuple_types_restored(self):
        again = ProblemSpec.from_json(_spec().to_json())
        assert isinstance(again.grid_shape, tuple)
        assert isinstance(again.periodic, tuple)
        assert again.periodic == (True, False)


class TestBuilders:
    def test_build_method_lb(self):
        m = _spec().build_method()
        assert isinstance(m, LBMethod)
        assert m.params.nu == 0.1

    def test_build_method_fd(self):
        m = _spec(method="fd").build_method()
        assert isinstance(m, FDMethod)

    def test_build_geometry_channel(self):
        solid, inlets, outlets = _spec().build_geometry()
        assert solid is not None and solid[:, 0].all()
        assert inlets == [] and outlets == []

    def test_build_geometry_open(self):
        solid, _, _ = _spec(geometry={"kind": "open"}).build_geometry()
        assert solid is None

    def test_build_geometry_flue(self):
        spec = _spec(
            method="lb",
            grid_shape=(96, 64),
            blocks=(2, 2),
            periodic=(False, False),
            params={"nu": 0.1},
            geometry={"kind": "flue_pipe", "jet_speed": 0.05},
        )
        solid, inlets, outlets = spec.build_geometry()
        assert solid.any()
        assert len(inlets) == 1 and len(outlets) == 1
        method = spec.build_method()
        assert method.inlets and method.outlets

    def test_geometry_rebuild_is_deterministic(self):
        """Two reconstructions (e.g. before and after a migration)
        produce identical boundary conditions."""
        spec = _spec(
            grid_shape=(96, 64),
            periodic=(False, False),
            geometry={"kind": "flue_pipe", "jet_speed": 0.05,
                      "ramp_steps": 30},
        )
        a, _, _ = spec.build_geometry()
        b, _, _ = spec.build_geometry()
        np.testing.assert_array_equal(a, b)
        m1, m2 = spec.build_method(), spec.build_method()
        assert m1.inlets[0].velocity_at(7) == m2.inlets[0].velocity_at(7)

    def test_build_decomposition_skips_solid_blocks(self):
        spec = _spec(
            grid_shape=(192, 128),
            blocks=(6, 4),
            periodic=(False, False),
            geometry={"kind": "flue_pipe", "variant": "channel"},
        )
        d = spec.build_decomposition()
        assert d.n_active < 24


HYBRID = {
    "default": "lb",
    "regions": [{"box": [[16, 0], [32, 24]], "method": "fd"}],
}


class TestMethodMap:
    """The v2 region-aware method field and its v1 compat shim."""

    def test_uniform_string_is_v1(self):
        spec = _spec()
        assert spec.spec_version == 1
        assert not spec.is_hybrid
        assert spec.method_names == ("lb",)
        assert spec.methods_by_rank() == ("lb",) * 4

    def test_map_selecting_one_method_normalizes_to_v1_string(self):
        """Spelling variants of a single-method problem collapse to
        the canonical string — they must hash identically downstream."""
        for method in (
            {"default": "lb"},
            {"default": "lb", "regions": []},
            {"default": "lb",
             "regions": [{"box": [[0, 0], [16, 24]], "method": "lb"}]},
        ):
            spec = _spec(method=method)
            assert spec.method == "lb"
            assert spec.spec_version == 1

    def test_hybrid_map_is_v2(self):
        spec = _spec(method=HYBRID, blocks=(2, 1))
        assert spec.spec_version == 2
        assert spec.is_hybrid
        assert spec.default_method == "lb"
        assert spec.method_names == ("fd", "lb")
        assert spec.methods_by_rank() == ("lb", "fd")

    def test_hybrid_pad_is_the_widest_method(self):
        from repro.fluids import FDMethod, LBMethod

        spec = _spec(method=HYBRID, blocks=(2, 1))
        assert spec.pad == max(FDMethod.pad, LBMethod.pad)
        assert _spec().pad == LBMethod.pad

    def test_region_cutting_through_block_raises(self):
        spec = _spec(method={
            "default": "lb",
            "regions": [{"box": [[10, 0], [32, 24]], "method": "fd"}],
        }, blocks=(2, 1))
        with pytest.raises(ValueError, match="cuts through"):
            spec.methods_by_rank()

    def test_last_containing_region_wins(self):
        spec = _spec(method={
            "default": "lb",
            "regions": [
                {"box": [[0, 0], [32, 24]], "method": "fd"},
                {"box": [[0, 0], [16, 24]], "method": "lb"},
            ],
        }, blocks=(2, 1))
        assert spec.methods_by_rank() == ("lb", "fd")

    @pytest.mark.parametrize("method", [
        {"default": "spectral"},
        {"default": "lb", "regions": [{"box": [[0, 0], [8, 8]],
                                       "method": "spectral"}]},
        {"default": "lb", "regions": [{"box": [[0, 0], [8, 8]]}]},
        {"default": "lb", "regions": [{"box": [[0, 0], [40, 24]],
                                       "method": "fd"}]},
        {"default": "lb", "regions": [{"box": [[0, 0, 0], [8, 8, 8]],
                                       "method": "fd"}]},
        {"default": "lb", "typo": 1},
        42,
    ])
    def test_malformed_maps_rejected(self, method):
        with pytest.raises(ValueError):
            _spec(method=method)

    def test_params_dict_not_mutated(self):
        params = {"nu": 0.1, "gravity": [1e-5, 0.0]}
        _spec(params=params)
        assert params["gravity"] == [1e-5, 0.0]


class TestSpecVersioning:
    def test_v1_json_has_no_version_key(self):
        """The v1 wire form is byte-stable across the redesign: old
        checkpoints and serve cache hashes must keep working."""
        raw = json.loads(_spec().to_json())
        assert "spec_version" not in raw

    def test_v2_json_carries_explicit_version(self):
        raw = json.loads(_spec(method=HYBRID, blocks=(2, 1)).to_json())
        assert raw["spec_version"] == 2

    def test_hybrid_round_trip(self):
        spec = _spec(method=HYBRID, blocks=(2, 1))
        again = ProblemSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_version == 2

    def test_unknown_version_is_loud(self):
        raw = json.loads(_spec().to_json())
        raw["spec_version"] = 7
        with pytest.raises(ValueError, match="unknown spec_version"):
            ProblemSpec.from_json(json.dumps(raw))

    def test_v1_claiming_a_method_map_is_rejected(self):
        raw = json.loads(_spec(method=HYBRID, blocks=(2, 1)).to_json())
        raw["spec_version"] = 1
        with pytest.raises(ValueError, match="cannot carry a method map"):
            ProblemSpec.from_json(json.dumps(raw))


class TestHybridBuilders:
    def test_build_methods_one_instance_per_kind(self):
        spec = _spec(method=HYBRID, blocks=(4, 1))
        methods = spec.build_methods()
        assert [type(m).__name__ for m in methods] == [
            "LBMethod", "LBMethod", "FDMethod", "FDMethod"]
        assert methods[0] is methods[1] and methods[2] is methods[3]
        # every instance carries the run-wide ghost width
        assert {m.pad for m in methods} == {spec.pad}

    def test_build_methods_uniform_spec(self):
        methods = _spec().build_methods()
        assert len(methods) == 4
        assert len({id(m) for m in methods}) == 1

    def test_build_method_raises_for_hybrid(self):
        with pytest.raises(ValueError, match="build_methods"):
            _spec(method=HYBRID, blocks=(2, 1)).build_method()


class TestInitialFields:
    def test_rest(self):
        f = initial_fields(_spec(), "rest")
        assert set(f) == {"rho", "u", "v"}
        assert (f["rho"] == 1.0).all()
        assert not f["u"].any()

    def test_standing_wave(self):
        f = initial_fields(_spec(geometry={"kind": "open"}),
                           "standing_wave", mode=2, amplitude=1e-3)
        assert f["rho"].std() > 0
        assert np.allclose(f["rho"].mean(), 1.0, atol=1e-6)

    def test_random_reproducible(self):
        spec = _spec()
        a = initial_fields(spec, "random", seed=42)
        b = initial_fields(spec, "random", seed=42)
        np.testing.assert_array_equal(a["rho"], b["rho"])

    def test_solid_nodes_at_rest(self):
        spec = _spec()
        f = initial_fields(spec, "random", seed=1)
        solid, _, _ = spec.build_geometry()
        assert (f["rho"][solid] == 1.0).all()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            initial_fields(_spec(), "vortex-sheet")


class TestNewGeometryKinds:
    def test_cavity_builds_walls_and_lid(self):
        spec = _spec(
            grid_shape=(34, 34), periodic=(False, False),
            geometry={"kind": "cavity", "lid_speed": 0.15},
        )
        solid, inlets, outlets = spec.build_geometry()
        assert solid[0, :].all() and solid[-1, :].all()
        assert solid[:, 0].all() and solid[:, -1].all()
        assert len(inlets) == 1 and not outlets
        lid = inlets[0]
        # lid row is the topmost fluid row, full cavity width
        assert lid.box.lo == (1, 32) and lid.box.hi == (33, 33)
        assert lid.velocity == (0.15, 0.0)

    def test_cavity_is_2d_only(self):
        spec = _spec(
            grid_shape=(18, 18, 18), blocks=(1, 1, 1),
            periodic=(False, False, False),
            geometry={"kind": "cavity"},
        )
        with pytest.raises(ValueError, match="two-dimensional"):
            spec.build_geometry()

    def test_cylinder_builds_obstacle(self):
        spec = _spec(
            grid_shape=(96, 48), blocks=(2, 1),
            geometry={"kind": "cylinder", "radius_frac": 0.1,
                      "center_frac": (0.25, 0.5)},
        )
        solid, inlets, outlets = spec.build_geometry()
        assert not inlets and not outlets
        assert solid[24, 24]          # cylinder center is solid
        assert not solid[72, 24]      # wake is fluid
        assert solid[:, 0].all() and solid[:, -1].all()

    def test_cylinder_center_frac_round_trips(self):
        spec = _spec(
            grid_shape=(96, 48), blocks=(2, 1),
            geometry={"kind": "cylinder", "center_frac": [0.25, 0.5]},
        )
        again = ProblemSpec.from_json(spec.to_json())
        assert again == spec
        assert isinstance(again.geometry["center_frac"], tuple)


class TestInitField:
    def test_default_json_has_no_init_key(self):
        # pre-init artifacts (and serve content hashes) must not change
        assert "init" not in json.loads(_spec().to_json())

    def test_init_round_trips(self):
        spec = _spec(
            grid_shape=(32, 32), periodic=(True, True),
            geometry={"kind": "open"},
            init={"kind": "taylor_green", "u0": 0.04},
        )
        raw = json.loads(spec.to_json())
        assert raw["init"] == {"kind": "taylor_green", "u0": 0.04}
        assert ProblemSpec.from_json(spec.to_json()) == spec

    def test_init_requires_kind(self):
        with pytest.raises(ValueError, match="kind"):
            _spec(init={"u0": 0.04})

    def test_unknown_init_kind_rejected(self):
        with pytest.raises(ValueError, match="vortex-sheet"):
            _spec(init={"kind": "vortex-sheet"})

    def test_initial_fields_resolves_spec_init(self):
        spec = _spec(
            grid_shape=(32, 32), periodic=(True, True),
            geometry={"kind": "open"},
            init={"kind": "taylor_green", "u0": 0.04},
        )
        f = initial_fields(spec, None)
        assert np.abs(f["u"]).max() == pytest.approx(0.04, rel=1e-6)
        # explicit kind still wins
        r = initial_fields(spec, "rest")
        assert not r["u"].any()

    def test_taylor_green_needs_square_box(self):
        spec = _spec(geometry={"kind": "open"}, periodic=(True, True),
                     init={"kind": "taylor_green"})
        with pytest.raises(ValueError, match="square"):
            initial_fields(spec, None)
