"""ProblemSpec serialization and reconstruction."""

import numpy as np
import pytest

from repro.distrib import ProblemSpec, initial_fields
from repro.fluids import FDMethod, LBMethod


def _spec(**kw):
    base = dict(
        method="lb",
        grid_shape=(32, 24),
        blocks=(2, 2),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0)},
        geometry={"kind": "channel"},
    )
    base.update(kw)
    return ProblemSpec(**base)


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(ValueError):
            _spec(method="spectral")

    def test_unknown_geometry(self):
        with pytest.raises(ValueError):
            _spec(geometry={"kind": "moebius"})


class TestRoundTrip:
    def test_json(self):
        spec = _spec()
        again = ProblemSpec.from_json(spec.to_json())
        assert again == spec

    def test_file(self, tmp_path):
        spec = _spec(method="fd", geometry={"kind": "flue_pipe",
                                            "jet_speed": 0.08})
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ProblemSpec.load(path) == spec

    def test_tuple_types_restored(self):
        again = ProblemSpec.from_json(_spec().to_json())
        assert isinstance(again.grid_shape, tuple)
        assert isinstance(again.periodic, tuple)
        assert again.periodic == (True, False)


class TestBuilders:
    def test_build_method_lb(self):
        m = _spec().build_method()
        assert isinstance(m, LBMethod)
        assert m.params.nu == 0.1

    def test_build_method_fd(self):
        m = _spec(method="fd").build_method()
        assert isinstance(m, FDMethod)

    def test_build_geometry_channel(self):
        solid, inlets, outlets = _spec().build_geometry()
        assert solid is not None and solid[:, 0].all()
        assert inlets == [] and outlets == []

    def test_build_geometry_open(self):
        solid, _, _ = _spec(geometry={"kind": "open"}).build_geometry()
        assert solid is None

    def test_build_geometry_flue(self):
        spec = _spec(
            method="lb",
            grid_shape=(96, 64),
            blocks=(2, 2),
            periodic=(False, False),
            params={"nu": 0.1},
            geometry={"kind": "flue_pipe", "jet_speed": 0.05},
        )
        solid, inlets, outlets = spec.build_geometry()
        assert solid.any()
        assert len(inlets) == 1 and len(outlets) == 1
        method = spec.build_method()
        assert method.inlets and method.outlets

    def test_geometry_rebuild_is_deterministic(self):
        """Two reconstructions (e.g. before and after a migration)
        produce identical boundary conditions."""
        spec = _spec(
            grid_shape=(96, 64),
            periodic=(False, False),
            geometry={"kind": "flue_pipe", "jet_speed": 0.05,
                      "ramp_steps": 30},
        )
        a, _, _ = spec.build_geometry()
        b, _, _ = spec.build_geometry()
        np.testing.assert_array_equal(a, b)
        m1, m2 = spec.build_method(), spec.build_method()
        assert m1.inlets[0].velocity_at(7) == m2.inlets[0].velocity_at(7)

    def test_build_decomposition_skips_solid_blocks(self):
        spec = _spec(
            grid_shape=(192, 128),
            blocks=(6, 4),
            periodic=(False, False),
            geometry={"kind": "flue_pipe", "variant": "channel"},
        )
        d = spec.build_decomposition()
        assert d.n_active < 24


class TestInitialFields:
    def test_rest(self):
        f = initial_fields(_spec(), "rest")
        assert set(f) == {"rho", "u", "v"}
        assert (f["rho"] == 1.0).all()
        assert not f["u"].any()

    def test_standing_wave(self):
        f = initial_fields(_spec(geometry={"kind": "open"}),
                           "standing_wave", mode=2, amplitude=1e-3)
        assert f["rho"].std() > 0
        assert np.allclose(f["rho"].mean(), 1.0, atol=1e-6)

    def test_random_reproducible(self):
        spec = _spec()
        a = initial_fields(spec, "random", seed=42)
        b = initial_fields(spec, "random", seed=42)
        np.testing.assert_array_equal(a["rho"], b["rho"])

    def test_solid_nodes_at_rest(self):
        spec = _spec()
        f = initial_fields(spec, "random", seed=1)
        solid, _, _ = spec.build_geometry()
        assert (f["rho"][solid] == 1.0).all()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            initial_fields(_spec(), "vortex-sheet")
