"""Virtual host registry and the §4.1 / §5.1 selection policies."""

import pytest

from repro.distrib import (
    HostDB,
    HostInfo,
    IDLE_USER_MINUTES,
    MIGRATE_LOAD_LIMIT,
    SUBMIT_LOAD_LIMIT,
    paper_cluster,
)


@pytest.fixture
def db(tmp_path):
    d = HostDB(tmp_path / "hosts.json")
    d.initialize(paper_cluster())
    return d


class TestPaperCluster:
    def test_composition(self):
        hosts = paper_cluster()
        assert len(hosts) == 25
        by_model = {}
        for h in hosts:
            by_model[h.model] = by_model.get(h.model, 0) + 1
        assert by_model == {"715/50": 16, "720": 6, "710": 3}

    def test_limits_match_paper(self):
        assert SUBMIT_LOAD_LIMIT == 0.6
        assert MIGRATE_LOAD_LIMIT == 1.5
        assert IDLE_USER_MINUTES == 20.0


class TestSelection:
    def test_prefers_715_models(self, db):
        """§7: 'our strategy is to choose 715 models first'."""
        picked = db.select_free(20)
        assert [h.model for h in picked[:16]] == ["715/50"] * 16
        assert all(h.model in ("720", "710") for h in picked[16:])

    def test_idle_users_first(self, db):
        """§4.1: idle-user workstations are examined before active-user
        ones, even when the active ones are faster."""
        for h in db.hosts():
            if h.model == "715/50":
                db.set_load(h.name, idle_minutes=1.0)  # active users
        picked = db.select_free(5)
        assert all(h.model != "715/50" for h in picked)

    def test_load_limit(self, db):
        busy = [h.name for h in db.hosts()][:20]
        for name in busy:
            db.set_load(name, load15=0.9)
        picked = db.select_free(5)
        assert all(h.load15 < SUBMIT_LOAD_LIMIT for h in picked)

    def test_active_user_accepted_when_needed(self, db):
        for h in db.hosts():
            db.set_load(h.name, idle_minutes=0.0)
        assert len(db.select_free(10)) == 10

    def test_insufficient_hosts(self, db):
        for h in db.hosts():
            db.set_load(h.name, load15=2.0)
        with pytest.raises(RuntimeError, match="free workstations"):
            db.select_free(1)

    def test_excludes_assigned(self, db):
        names = [h.name for h in db.select_free(25)]
        assert len(names) == 25
        db.assign(names[0], 0)
        remaining = db.select_free(24)
        assert names[0] not in [h.name for h in remaining]

    def test_exclude_parameter(self, db):
        first = db.select_free(1)[0]
        second = db.select_free(1, exclude={first.name})[0]
        assert second.name != first.name


class TestOverload:
    def test_overloaded_detection(self, db):
        h = db.hosts()[0]
        db.assign(h.name, 3)
        db.set_load(h.name, load5=2.0)
        over = db.overloaded()
        assert [x.rank for x in over] == [3]

    def test_unassigned_hosts_never_reported(self, db):
        h = db.hosts()[0]
        db.set_load(h.name, load5=5.0)
        assert db.overloaded() == []

    def test_threshold_is_exclusive(self, db):
        h = db.hosts()[0]
        db.assign(h.name, 1)
        db.set_load(h.name, load5=1.5)
        assert db.overloaded() == []
        db.set_load(h.name, load5=1.6)
        assert len(db.overloaded()) == 1


class TestBookkeeping:
    def test_assign_release(self, db):
        h = db.hosts()[0]
        db.assign(h.name, 7)
        assert db.host_of_rank(7).name == h.name
        db.assign(h.name, None)
        assert db.host_of_rank(7) is None

    def test_duplicate_names_rejected(self, tmp_path):
        db = HostDB(tmp_path / "h.json")
        with pytest.raises(ValueError):
            db.initialize([HostInfo("a"), HostInfo("a")])

    def test_get(self, db):
        h = db.hosts()[3]
        assert db.get(h.name).name == h.name
