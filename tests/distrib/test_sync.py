"""The App. B synchronization algorithm and §5.2 staggered saving."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.distrib import SaveTurns, SyncFiles


class TestSyncStep:
    def test_t_is_max_plus_one(self, tmp_path):
        sf = SyncFiles(tmp_path, epoch=0)
        for rank, step in enumerate([10, 12, 9, 11]):
            sf.write_step(rank, step)
        assert sf.wait_sync_step(4, timeout=1.0) == 13

    @given(steps=st.lists(st.integers(0, 10_000), min_size=1, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_property_max_plus_one(self, tmp_path_factory, steps):
        tmp = tmp_path_factory.mktemp("sync")
        sf = SyncFiles(tmp, epoch=0)
        for rank, step in enumerate(steps):
            sf.write_step(rank, step)
        assert sf.wait_sync_step(len(steps), timeout=1.0) == max(steps) + 1

    def test_epochs_independent(self, tmp_path):
        a, b = SyncFiles(tmp_path, 0), SyncFiles(tmp_path, 1)
        a.write_step(0, 5)
        b.write_step(0, 50)
        assert a.wait_sync_step(1, timeout=1.0) == 6
        assert b.wait_sync_step(1, timeout=1.0) == 51

    def test_has_written(self, tmp_path):
        sf = SyncFiles(tmp_path, 0)
        assert not sf.has_written(2)
        sf.write_step(2, 4)
        assert sf.has_written(2)

    def test_timeout_when_rank_missing(self, tmp_path):
        sf = SyncFiles(tmp_path, 0)
        sf.write_step(0, 1)
        with pytest.raises(TimeoutError):
            sf.wait_sync_step(2, timeout=0.1, poll=0.02)

    def test_concurrent_writes(self, tmp_path):
        """Signal handlers of many processes append concurrently."""
        sf = SyncFiles(tmp_path, 0)
        n = 24

        def w(rank):
            sf.write_step(rank, 100 + rank)

        threads = [threading.Thread(target=w, args=(r,)) for r in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sf.wait_sync_step(n, timeout=1.0) == 100 + n - 1 + 1

    def test_reached_barrier(self, tmp_path):
        sf = SyncFiles(tmp_path, 0)
        sf.mark_reached(0, 13)
        with pytest.raises(TimeoutError):
            sf.wait_all_reached(2, timeout=0.1, poll=0.02)
        sf.mark_reached(1, 13)
        sf.wait_all_reached(2, timeout=1.0)


class TestSaveTurns:
    def test_rank_order_enforced(self, tmp_path):
        """Savers proceed strictly in rank order (§5.2: 'one after the
        other in an orderly fashion')."""
        n = 6
        order = []
        lock = threading.Lock()
        errors = []

        def saver(rank):
            turns = SaveTurns(tmp_path, step=100)
            try:
                turns.wait_turn(rank, timeout=10.0)
                with lock:
                    order.append(rank)
                turns.finish_turn(rank, n)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=saver, args=(r,))
            for r in reversed(range(n))  # start in worst-case order
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert order == list(range(n))

    def test_completion_marker_only_after_all(self, tmp_path):
        n = 3
        turns = SaveTurns(tmp_path, step=40)
        for rank in range(n - 1):
            turns.wait_turn(rank, timeout=1.0)
            turns.finish_turn(rank, n)
            assert SaveTurns.latest_complete_step(tmp_path) is None
        turns.wait_turn(n - 1, timeout=1.0)
        turns.finish_turn(n - 1, n)
        assert SaveTurns.latest_complete_step(tmp_path) == 40

    def test_latest_complete_step_picks_newest(self, tmp_path):
        for step in (10, 30, 20):
            t = SaveTurns(tmp_path, step=step)
            t.wait_turn(0, timeout=1.0)
            t.finish_turn(0, 1)
        assert SaveTurns.latest_complete_step(tmp_path) == 30

    def test_no_checkpoints(self, tmp_path):
        assert SaveTurns.latest_complete_step(tmp_path) is None

    def test_out_of_turn_finish_rejected(self, tmp_path):
        turns = SaveTurns(tmp_path, step=5)
        with pytest.raises(RuntimeError):
            turns.finish_turn(2, 4)

    def test_wait_turn_timeout(self, tmp_path):
        turns = SaveTurns(tmp_path, step=5)
        with pytest.raises(TimeoutError):
            turns.wait_turn(1, timeout=0.1, poll=0.02)
