"""The App. B synchronization algorithm and §5.2 staggered saving."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.distrib import SaveTurns, SyncFiles


class TestSyncStep:
    def test_t_is_max_plus_one(self, tmp_path):
        sf = SyncFiles(tmp_path, epoch=0)
        for rank, step in enumerate([10, 12, 9, 11]):
            sf.write_step(rank, step)
        assert sf.wait_sync_step(4, timeout=1.0) == 13

    @given(steps=st.lists(st.integers(0, 10_000), min_size=1, max_size=12))
    @settings(max_examples=20, deadline=None)
    def test_property_max_plus_one(self, tmp_path_factory, steps):
        tmp = tmp_path_factory.mktemp("sync")
        sf = SyncFiles(tmp, epoch=0)
        for rank, step in enumerate(steps):
            sf.write_step(rank, step)
        assert sf.wait_sync_step(len(steps), timeout=1.0) == max(steps) + 1

    def test_epochs_independent(self, tmp_path):
        a, b = SyncFiles(tmp_path, 0), SyncFiles(tmp_path, 1)
        a.write_step(0, 5)
        b.write_step(0, 50)
        assert a.wait_sync_step(1, timeout=1.0) == 6
        assert b.wait_sync_step(1, timeout=1.0) == 51

    def test_has_written(self, tmp_path):
        sf = SyncFiles(tmp_path, 0)
        assert not sf.has_written(2)
        sf.write_step(2, 4)
        assert sf.has_written(2)

    def test_timeout_when_rank_missing(self, tmp_path):
        sf = SyncFiles(tmp_path, 0)
        sf.write_step(0, 1)
        with pytest.raises(TimeoutError):
            sf.wait_sync_step(2, timeout=0.1, poll=0.02)

    def test_concurrent_writes(self, tmp_path):
        """Signal handlers of many processes append concurrently."""
        sf = SyncFiles(tmp_path, 0)
        n = 24

        def w(rank):
            sf.write_step(rank, 100 + rank)

        threads = [threading.Thread(target=w, args=(r,)) for r in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sf.wait_sync_step(n, timeout=1.0) == 100 + n - 1 + 1

    def test_reached_barrier(self, tmp_path):
        sf = SyncFiles(tmp_path, 0)
        sf.mark_reached(0, 13)
        with pytest.raises(TimeoutError):
            sf.wait_all_reached(2, timeout=0.1, poll=0.02)
        sf.mark_reached(1, 13)
        sf.wait_all_reached(2, timeout=1.0)


class TestSaveTurns:
    def test_rank_order_enforced(self, tmp_path):
        """Savers proceed strictly in rank order (§5.2: 'one after the
        other in an orderly fashion')."""
        n = 6
        order = []
        lock = threading.Lock()
        errors = []

        def saver(rank):
            turns = SaveTurns(tmp_path, step=100)
            try:
                turns.wait_turn(rank, timeout=10.0)
                with lock:
                    order.append(rank)
                turns.finish_turn(rank, n)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=saver, args=(r,))
            for r in reversed(range(n))  # start in worst-case order
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert order == list(range(n))

    def test_completion_marker_only_after_all(self, tmp_path):
        n = 3
        turns = SaveTurns(tmp_path, step=40)
        for rank in range(n - 1):
            turns.wait_turn(rank, timeout=1.0)
            turns.finish_turn(rank, n)
            assert SaveTurns.latest_complete_step(tmp_path) is None
        turns.wait_turn(n - 1, timeout=1.0)
        turns.finish_turn(n - 1, n)
        assert SaveTurns.latest_complete_step(tmp_path) == 40

    def test_latest_complete_step_picks_newest(self, tmp_path):
        for step in (10, 30, 20):
            t = SaveTurns(tmp_path, step=step)
            t.wait_turn(0, timeout=1.0)
            t.finish_turn(0, 1)
        assert SaveTurns.latest_complete_step(tmp_path) == 30

    def test_no_checkpoints(self, tmp_path):
        assert SaveTurns.latest_complete_step(tmp_path) is None

    def test_out_of_turn_finish_rejected(self, tmp_path):
        turns = SaveTurns(tmp_path, step=5)
        with pytest.raises(RuntimeError):
            turns.finish_turn(2, 4)

    def test_wait_turn_timeout(self, tmp_path):
        turns = SaveTurns(tmp_path, step=5)
        with pytest.raises(TimeoutError):
            turns.wait_turn(1, timeout=0.1, poll=0.02)

    def test_reset_after_drops_later_state_only(self, tmp_path):
        for step in (10, 20, 30):
            t = SaveTurns(tmp_path, step=step)
            t.wait_turn(0, timeout=1.0)
            t.finish_turn(0, 1)
        SaveTurns.reset_after(tmp_path, 10)
        assert SaveTurns.complete_steps(tmp_path) == [10]
        assert not (tmp_path / "sync"
                    / "save_turn_step000000020.txt").exists()
        # a replayed save at step 20 now starts from a clean token
        replay = SaveTurns(tmp_path, step=20)
        replay.wait_turn(0, timeout=1.0)
        replay.finish_turn(0, 1)
        assert SaveTurns.latest_complete_step(tmp_path) == 20


class TestMalformedRecords:
    """Garbled sync-file lines warn loudly and never shadow good ones."""

    def test_malformed_line_warns(self, tmp_path):
        from repro.distrib import SyncFileWarning

        sf = SyncFiles(tmp_path, epoch=0)
        sf.write_step(0, 10)
        with open(sf.steps_path, "a") as f:
            f.write("1 12\n0 not-a-number\n")
        with pytest.warns(SyncFileWarning, match="malformed sync record"):
            steps = sf.wait_sync_step(2, timeout=1.0)
        # the garbled line did not erase rank 0's last complete record
        assert steps == 13

    def test_wrong_field_count_warns(self, tmp_path):
        from repro.distrib import SyncFileWarning

        sf = SyncFiles(tmp_path, epoch=0)
        sf.write_step(0, 5)
        with open(sf.steps_path, "a") as f:
            f.write("0 6 extra-field\n")
        with pytest.warns(SyncFileWarning, match="expected 2 fields"):
            assert sf.wait_sync_step(1, timeout=1.0) == 6

    def test_later_complete_record_overrides(self, tmp_path):
        sf = SyncFiles(tmp_path, epoch=0)
        sf.write_step(0, 5)
        sf.write_step(0, 9)  # rank re-announces after a restart
        assert sf.wait_sync_step(1, timeout=1.0) == 10

    def test_blank_lines_ignored_silently(self, tmp_path):
        import warnings as _warnings

        sf = SyncFiles(tmp_path, epoch=0)
        sf.write_step(0, 3)
        with open(sf.steps_path, "a") as f:
            f.write("\n   \n")
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            assert sf.wait_sync_step(1, timeout=1.0) == 4


class TestMessageSaveTurns:
    """The token-passing save barrier (satellite of the collectives PR)."""

    def test_rank_ordered_saving(self, tmp_path):
        import numpy as np  # noqa: F401

        from repro.distrib import MessageSaveTurns
        from repro.net import Communicator, LocalFabric

        n = 4
        fabric = LocalFabric(n)
        order = []
        lock = threading.Lock()
        errors = []

        def saver(rank):
            comm = Communicator(fabric.channel_set(rank), rank, n)
            turns = MessageSaveTurns(comm, tmp_path, step=20)
            try:
                turns.wait_turn(rank, timeout=10.0)
                with lock:
                    order.append(rank)
                turns.finish_turn(rank, n)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=saver, args=(r,))
            for r in reversed(range(n))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        assert order == list(range(n))
        assert SaveTurns.latest_complete_step(tmp_path) == 20

    def test_marker_only_after_last(self, tmp_path):
        from repro.distrib import MessageSaveTurns
        from repro.net import Communicator, LocalFabric

        fabric = LocalFabric(2)
        c0 = Communicator(fabric.channel_set(0), 0, 2)
        turns0 = MessageSaveTurns(c0, tmp_path, step=7)
        turns0.wait_turn(0)
        turns0.finish_turn(0, 2)
        assert SaveTurns.latest_complete_step(tmp_path) is None

        c1 = Communicator(fabric.channel_set(1), 1, 2)
        turns1 = MessageSaveTurns(c1, tmp_path, step=7)
        turns1.wait_turn(1, timeout=5.0)
        turns1.finish_turn(1, 2)
        assert SaveTurns.latest_complete_step(tmp_path) == 7
