"""Monitor recovery edge cases: checkpoint selection and restart limits.

Unit-level coverage of :meth:`Monitor._restart_from_checkpoint` and the
machinery around it — the paths a live chaos run only exercises by
luck: a corrupt *newest* checkpoint, a checkpoint missing one rank's
dump, an exhausted restart budget, and a migration epoch that breaks
mid-sequence.  Worker processes are faked; nothing is spawned.
"""

import numpy as np
import pytest

import repro.distrib.monitor as monitor_mod
from repro.chaos import corrupt_dump
from repro.core import Decomposition, make_subregions
from repro.distrib import MonitorError, dump_path, save_dump
from repro.distrib.hostdb import HostDB
from repro.distrib.monitor import Monitor, _EpochBroken
from repro.distrib.sync import SaveTurns

RANKS = (0, 1)


class _DeadProc:
    """A worker process that has already exited."""

    pid = 99999

    def poll(self):
        return 0

    def send_signal(self, sig):  # pragma: no cover - dead already
        pass

    def wait(self, timeout=None):
        return 0

    def kill(self):  # pragma: no cover - dead already
        pass


def _write_checkpoint(workdir, step, ranks=RANKS):
    """A complete checkpoint: one valid dump per rank + the marker."""
    rng = np.random.default_rng(step)
    shape = (20, 16)
    fields = {"rho": rng.random(shape), "f": rng.random((9,) + shape)}
    d = Decomposition(shape, (2, 1), solid=None)
    subs = make_subregions(d, 3, fields, rng.random(shape) < 0.1)
    tag = f"ckpt{step:09d}"
    for rank in ranks:
        save_dump(subs[rank], dump_path(workdir / "dumps", rank, tag=tag))
    (workdir / "sync").mkdir(parents=True, exist_ok=True)
    SaveTurns.complete_marker(workdir, step).touch()
    return tag


def _monitor(tmp_path, **kw):
    return Monitor(
        tmp_path,
        HostDB(tmp_path / "hosts.json"),
        {rank: _DeadProc() for rank in RANKS},
        {"steps_total": 40},
        **kw,
    )


class TestSelectCheckpoint:
    def test_prefers_newest_complete(self, tmp_path):
        _write_checkpoint(tmp_path, 10)
        tag = _write_checkpoint(tmp_path, 20)
        assert _monitor(tmp_path)._select_checkpoint() == tag

    def test_corrupt_newest_falls_back_one(self, tmp_path):
        old = _write_checkpoint(tmp_path, 10)
        bad = _write_checkpoint(tmp_path, 20)
        corrupt_dump(dump_path(tmp_path / "dumps", 1, tag=bad))
        mon = _monitor(tmp_path)
        assert mon._select_checkpoint() == old
        log = (tmp_path / "logs" / "monitor.log").read_text()
        assert f"checkpoint {bad} rejected" in log

    def test_missing_dump_falls_back_one(self, tmp_path):
        old = _write_checkpoint(tmp_path, 10)
        bad = _write_checkpoint(tmp_path, 20)
        dump_path(tmp_path / "dumps", 0, tag=bad).unlink()
        assert _monitor(tmp_path)._select_checkpoint() == old

    def test_every_checkpoint_bad_means_initial_state(self, tmp_path):
        bad = _write_checkpoint(tmp_path, 10)
        for rank in RANKS:
            corrupt_dump(dump_path(tmp_path / "dumps", rank, tag=bad),
                         truncate=True)
        assert _monitor(tmp_path)._select_checkpoint() == "state"

    def test_no_checkpoints_at_all(self, tmp_path):
        assert _monitor(tmp_path)._select_checkpoint() == "state"


class TestRestartFromCheckpoint:
    def test_max_restarts_exhaustion(self, tmp_path):
        mon = _monitor(tmp_path, max_restarts=2)
        mon.restarts = 2
        with pytest.raises(MonitorError, match="giving up after 2"):
            mon._restart_from_checkpoint(crashed=[1])

    def test_exhaustion_reports_worker_diagnostics(self, tmp_path):
        log_dir = tmp_path / "logs"
        log_dir.mkdir(parents=True)
        (log_dir / "rank0001.log").write_text(
            "12.0 step=7 FATAL:\nRuntimeError: boom\n"
        )
        mon = _monitor(tmp_path, max_restarts=0)
        with pytest.raises(MonitorError, match="RuntimeError: boom"):
            mon._restart_from_checkpoint(crashed=[1])

    def test_restart_clears_stale_save_turn_state(self, tmp_path,
                                                  monkeypatch):
        """A restart must reset save tokens past the restart point, or
        the replaying workers abort the moment they re-save (the token
        file still holds the pre-crash count)."""
        _write_checkpoint(tmp_path, 10)
        bad = _write_checkpoint(tmp_path, 20)
        corrupt_dump(dump_path(tmp_path / "dumps", 0, tag=bad))
        sync = tmp_path / "sync"
        (sync / "save_turn_step000000020.txt").write_text("2")
        spawned = []
        monkeypatch.setattr(
            monitor_mod, "spawn_worker",
            lambda cfg: spawned.append(cfg) or _DeadProc(),
        )
        mon = _monitor(tmp_path)
        mon._restart_from_checkpoint(crashed=[0])
        assert mon.restarts == 1
        assert len(spawned) == len(RANKS)
        assert all(cfg.dump_in.endswith(
            f"ckpt{10:09d}_rank{cfg.rank:04d}.npz") for cfg in spawned)
        # step-20 state (corrupt, beyond the restart point) is gone;
        # the step-10 marker the restart reads from survives.
        assert not (sync / "save_turn_step000000020.txt").exists()
        assert not SaveTurns.complete_marker(tmp_path, 20).exists()
        assert SaveTurns.complete_marker(tmp_path, 10).exists()

    def test_restart_bumps_generation_and_clears_done(self, tmp_path,
                                                      monkeypatch):
        _write_checkpoint(tmp_path, 10)
        (tmp_path / "done_rank0001").touch()
        monkeypatch.setattr(monitor_mod, "spawn_worker",
                            lambda cfg: _DeadProc())
        mon = _monitor(tmp_path)
        mon._done.add(1)
        mon._restart_from_checkpoint()
        assert mon.generation == 1
        assert mon._done == set()
        assert not (tmp_path / "done_rank0001").exists()


class TestMigrationEpochFailure:
    def test_broken_epoch_degrades_to_checkpoint_restart(self, tmp_path,
                                                         monkeypatch):
        """A migration that dies mid-sequence (§ App. B) is recoverable:
        the monitor falls back to a full checkpoint restart instead of
        aborting the run."""
        mon = _monitor(tmp_path)
        restarted = []
        monkeypatch.setattr(
            mon, "_migrate_epoch",
            lambda epoch, ranks: (_ for _ in ()).throw(
                _EpochBroken("registry: timed out")
            ),
        )
        monkeypatch.setattr(
            mon, "_restart_from_checkpoint",
            lambda crashed=None: restarted.append(True),
        )
        mon._migrate([1])
        assert restarted == [True]
        assert mon.migrations == 0
        log = (tmp_path / "logs" / "monitor.log").read_text()
        assert "migration epoch 0 broken: registry: timed out" in log

    def test_intact_epoch_does_not_restart(self, tmp_path, monkeypatch):
        mon = _monitor(tmp_path)
        monkeypatch.setattr(mon, "_migrate_epoch",
                            lambda epoch, ranks: None)
        monkeypatch.setattr(
            mon, "_restart_from_checkpoint",
            lambda crashed=None: pytest.fail("restart on healthy epoch"),
        )
        mon._migrate([0])
