"""Dump files: the save/restore unit of distribution and migration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Decomposition, make_subregions
from repro.distrib import dump_path, load_dump, save_dump


def _make_sub(seed=0, shape=(20, 16), blocks=(2, 2)):
    rng = np.random.default_rng(seed)
    fields = {
        "rho": rng.random(shape),
        "f": rng.random((9,) + shape),
    }
    solid = rng.random(shape) < 0.1
    d = Decomposition(shape, blocks, solid=None)
    sub = make_subregions(d, 3, fields, solid)[0]
    sub.step = 17
    sub.extra["jet_phase"] = 0.25
    return sub


class TestRoundTrip:
    @given(seed=st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_exact(self, tmp_path_factory, seed):
        sub = _make_sub(seed)
        path = tmp_path_factory.mktemp("dumps") / "d.npz"
        save_dump(sub, path)
        back = load_dump(path)
        assert back.block == sub.block
        assert back.pad == sub.pad
        assert back.step == sub.step
        assert back.extra == sub.extra
        assert set(back.fields) == set(sub.fields)
        for name in sub.fields:
            np.testing.assert_array_equal(back.fields[name],
                                          sub.fields[name])
        np.testing.assert_array_equal(back.solid, sub.solid)

    def test_aux_not_stored(self, tmp_path):
        sub = _make_sub()
        sub.aux["scratch"] = np.zeros(3)
        path = tmp_path / "d.npz"
        save_dump(sub, path)
        assert load_dump(path).aux == {}

    def test_bitwise_fields(self, tmp_path):
        """No precision loss: the dump is the migration mechanism and
        must not perturb the computation."""
        sub = _make_sub(3)
        sub.fields["rho"][5, 5] = np.nextafter(1.0, 2.0)
        path = tmp_path / "d.npz"
        save_dump(sub, path)
        assert load_dump(path).fields["rho"][5, 5] == np.nextafter(1.0, 2.0)


class TestAtomicity:
    def test_no_tmp_left_behind(self, tmp_path):
        sub = _make_sub()
        save_dump(sub, tmp_path / "d.npz")
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []

    def test_overwrite_is_atomic_rename(self, tmp_path):
        sub = _make_sub()
        path = tmp_path / "d.npz"
        save_dump(sub, path)
        sub.step = 99
        save_dump(sub, path)
        assert load_dump(path).step == 99

    def test_creates_parent_dirs(self, tmp_path):
        sub = _make_sub()
        path = tmp_path / "a" / "b" / "d.npz"
        save_dump(sub, path)
        assert path.exists()


class TestDumpPath:
    def test_naming(self, tmp_path):
        assert dump_path(tmp_path, 3).name == "state_rank0003.npz"
        assert (
            dump_path(tmp_path, 12, tag="ckpt000000100").name
            == "ckpt000000100_rank0012.npz"
        )
