"""The decomposition program: complete dumps, one per active rank."""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.distrib import (
    ProblemSpec,
    decompose_problem,
    dump_path,
    initial_fields,
    load_dump,
)


def _spec(blocks=(2, 2), geometry=None):
    return ProblemSpec(
        method="lb",
        grid_shape=(32, 24),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1},
        geometry=geometry or {"kind": "channel"},
    )


class TestDecomposeProblem:
    def test_one_dump_per_active_rank(self, tmp_path):
        spec = _spec()
        paths = decompose_problem(spec, initial_fields(spec), tmp_path)
        assert len(paths) == 4
        for rank, path in enumerate(paths):
            assert path == dump_path(tmp_path / "dumps", rank)
            assert path.exists()

    def test_spec_saved_alongside(self, tmp_path):
        spec = _spec()
        decompose_problem(spec, initial_fields(spec), tmp_path)
        assert ProblemSpec.load(tmp_path / "spec.json") == spec

    def test_dumps_are_complete(self, tmp_path):
        """'These files contain all the information that is needed by a
        workstation to participate' — including the method-private
        populations."""
        spec = _spec()
        paths = decompose_problem(spec, initial_fields(spec), tmp_path)
        sub = load_dump(paths[0])
        assert set(sub.fields) == {"rho", "u", "v", "f"}
        assert sub.fields["f"].shape[0] == 9
        assert sub.step == 0

    def test_inactive_blocks_get_no_dump(self, tmp_path):
        spec = ProblemSpec(
            method="lb",
            grid_shape=(96, 64),
            blocks=(2, 4),
            periodic=(False, False),
            params={"nu": 0.1},
            geometry={"kind": "flue_pipe", "variant": "channel"},
        )
        d = spec.build_decomposition()
        assert d.n_active < d.n_blocks
        paths = decompose_problem(spec, initial_fields(spec), tmp_path)
        assert len(paths) == d.n_active

    def test_dumps_reproduce_global_state(self, tmp_path):
        spec = _spec()
        fields = initial_fields(spec, "random", seed=3)
        paths = decompose_problem(spec, fields, tmp_path)
        subs = [load_dump(p) for p in paths]
        from repro.core import assemble_global

        d = spec.build_decomposition()
        got = assemble_global(d, subs, "rho")
        np.testing.assert_array_equal(got, fields["rho"])

    def test_dump_ghosts_match_simulation_start(self, tmp_path):
        """A dump-restored subregion equals the in-process Simulation's
        subregion at step 0, ghost for ghost."""
        spec = _spec()
        fields = initial_fields(spec, "random", seed=5)
        paths = decompose_problem(spec, fields, tmp_path)
        solid, _, _ = spec.build_geometry()
        sim = Simulation(
            spec.build_method(), spec.build_decomposition(), fields, solid
        )
        for path, sub in zip(paths, sim.subs):
            back = load_dump(path)
            for name in sub.fields:
                np.testing.assert_array_equal(
                    back.fields[name], sub.fields[name], err_msg=name
                )
