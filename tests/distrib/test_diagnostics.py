"""In-flight global diagnostics: records, log, abort semantics, parity.

Fast tests exercise the partials/fold/collective machinery in-process;
the ``slow``-marked ones spawn real distributed runs and assert the
ISSUE acceptance bar — a NaN injected into one rank aborts the whole
run with :data:`EXIT_DIAGNOSTIC` within ``2 * N`` steps, diagnosed, not
stalled out.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import Decomposition, Simulation, ThreadedSimulation
from repro.distrib import (
    DEFAULT_VMAX,
    DiagnosticsFailure,
    DiagnosticsLog,
    DiagRecord,
    DistributedRun,
    EXIT_DIAGNOSTIC,
    GlobalDiagnostics,
    MonitorError,
    ProblemSpec,
    RunSettings,
    fold_partials,
    initial_fields,
    local_partials,
    run_distributed,
    serial_diagnostics,
)
from repro.fluids import FluidParams, LBMethod
from repro.net import Communicator, LocalFabric


def _small_sim(blocks=(2, 2), shape=(16, 12), seed=3):
    rng = np.random.default_rng(seed)
    params = FluidParams.lattice(2, nu=0.1, gravity=(1e-5, 0.0),
                                 filter_eps=0.02)
    fields = {
        "rho": 1.0 + 0.01 * rng.standard_normal(shape),
        "u": 0.01 * rng.standard_normal(shape),
        "v": 0.01 * rng.standard_normal(shape),
    }
    d = Decomposition(shape, blocks, periodic=(True, False))
    return Simulation(LBMethod(params, 2), d, fields), fields, d


# ----------------------------------------------------------------------
# records and the log
# ----------------------------------------------------------------------
class TestRecordAndLog:
    def test_roundtrip(self):
        rec = DiagRecord(step=40, total_mass=192.5, kinetic_energy=1e-4,
                         max_speed=0.03, n_nonfinite=0, wall_time=12.5)
        assert DiagRecord.from_line(rec.to_line()) == rec

    def test_roundtrip_nan(self):
        """A blown-up run serializes NaN diagnostics without crashing."""
        rec = DiagRecord(step=7, total_mass=float("nan"),
                         kinetic_energy=float("inf"), max_speed=float("nan"),
                         n_nonfinite=12)
        back = DiagRecord.from_line(rec.to_line())
        assert np.isnan(back.total_mass)
        assert np.isinf(back.kinetic_energy)
        assert back.n_nonfinite == 12

    def test_log_append_read(self, tmp_path):
        log = DiagnosticsLog.for_workdir(tmp_path)
        for s in (10, 20, 30):
            log.append(DiagRecord(step=s, total_mass=1.0, kinetic_energy=0.0,
                                  max_speed=0.0, n_nonfinite=0))
        assert [r.step for r in log.read()] == [10, 20, 30]
        assert log.last_step() == 30

    def test_log_tolerates_torn_tail(self, tmp_path):
        log = DiagnosticsLog.for_workdir(tmp_path)
        log.append(DiagRecord(step=10, total_mass=1.0, kinetic_energy=0.0,
                              max_speed=0.0, n_nonfinite=0))
        with open(log.path, "a") as f:
            f.write('{"step": 20, "total_ma')  # crash mid-append
        assert [r.step for r in log.read()] == [10]
        assert log.last_step() == 10

    def test_empty_log(self, tmp_path):
        log = DiagnosticsLog.for_workdir(tmp_path)
        assert log.read() == []
        assert log.last() is None
        assert log.last_step() is None


# ----------------------------------------------------------------------
# partials and the serial reference
# ----------------------------------------------------------------------
class TestPartials:
    def test_partials_match_global_arrays(self):
        sim, fields, _ = _small_sim(blocks=(1, 1))
        p = local_partials(sim.subs[0])
        rho, u, v = fields["rho"], fields["u"], fields["v"]
        assert p[0] == pytest.approx(rho.sum(), rel=1e-15)
        assert p[1] == pytest.approx(
            (0.5 * rho * (u * u + v * v)).sum(), rel=1e-12)
        assert p[2] == pytest.approx(np.sqrt(u * u + v * v).max(), rel=1e-15)
        assert p[3] == 0.0

    def test_partials_count_nonfinite(self):
        sim, _, _ = _small_sim(blocks=(1, 1))
        view = sim.subs[0].interior_view("rho")
        view[2, 3] = np.nan
        view[4, 5] = np.inf
        assert local_partials(sim.subs[0])[3] == 2.0

    def test_fold_is_rank_ordered(self):
        parts = [np.array([0.1 * r, 0.01 * r, 0.3 - 0.01 * r, 0.0])
                 for r in range(5)]
        folded = fold_partials(parts)
        s = parts[0][:2]
        for p in parts[1:]:
            s = np.add(s, p[:2])
        assert folded[:2].tobytes() == s.tobytes()
        assert folded[2] == 0.3

    @pytest.mark.parametrize("algorithm", ["tree", "ring"])
    def test_serial_diagnostics_decomposition_invariant(self, algorithm):
        """The reduced record is identical however the domain is cut."""
        sim1, _, _ = _small_sim(blocks=(1, 1))
        sim4, _, _ = _small_sim(blocks=(2, 2))
        sim1.step(4)
        sim4.step(4)
        r1 = serial_diagnostics(sim1.subs, algorithm=algorithm)
        r4 = serial_diagnostics(sim4.subs, algorithm=algorithm)
        # same fold shape: one partial vs four folded in rank order —
        # the parallel-equivalence suite guarantees the fields agree
        # bitwise; diagnostics sums may differ only by fold order, which
        # the rank-ordered fold pins down for the 2x2 case
        assert r1.step == r4.step
        assert r1.n_nonfinite == r4.n_nonfinite == 0
        assert r4.total_mass == pytest.approx(r1.total_mass, rel=1e-13)
        assert r4.max_speed == r1.max_speed

    def test_simulation_global_diagnostics_method(self):
        sim, _, _ = _small_sim(blocks=(2, 2))
        sim.step(2)
        rec = sim.global_diagnostics()
        ref = serial_diagnostics(sim.subs)
        assert rec.total_mass == ref.total_mass
        assert rec.kinetic_energy == ref.kinetic_energy
        assert rec.max_speed == ref.max_speed


# ----------------------------------------------------------------------
# GlobalDiagnostics over the in-process backend (threads)
# ----------------------------------------------------------------------
def _run_diags(subs, every=1, vmax=0.0, log=None, algorithm="tree"):
    """One GlobalDiagnostics.check per sub, threaded; returns results
    (DiagRecord or the raised DiagnosticsFailure) by rank."""
    n = len(subs)
    fabric = LocalFabric(n)
    out = [None] * n

    def run(r):
        comm = Communicator(fabric.channel_set(r), r, n, algorithm=algorithm)
        diag = GlobalDiagnostics(comm, every=every, vmax=vmax,
                                 log=log if r == 0 else None)
        try:
            out[r] = diag.check(subs[r])
        except DiagnosticsFailure as exc:
            out[r] = exc

    threads = [threading.Thread(target=run, args=(r,)) for r in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return out


class TestGlobalDiagnostics:
    def test_matches_serial_bitwise(self, tmp_path):
        sim, _, _ = _small_sim(blocks=(2, 2))
        sim.step(3)
        ref = serial_diagnostics(sim.subs)
        log = DiagnosticsLog.for_workdir(tmp_path)
        results = _run_diags(sim.subs, log=log)
        for rec in results:
            assert isinstance(rec, DiagRecord)
            assert rec.total_mass == ref.total_mass
            assert rec.kinetic_energy == ref.kinetic_energy
            assert rec.max_speed == ref.max_speed
        # rank 0 appended the record
        assert log.last_step() == sim.subs[0].step

    def test_nan_raises_on_every_rank(self):
        sim, _, _ = _small_sim(blocks=(2, 2))
        sim.subs[2].interior_view("rho")[1, 1] = np.nan
        results = _run_diags(sim.subs)
        assert all(isinstance(r, DiagnosticsFailure) for r in results)
        assert all("non-finite" in r.reason for r in results)
        # every rank computed the same reduced record
        steps = {r.record.n_nonfinite for r in results}
        assert steps == {1}

    def test_cfl_sentinel(self):
        sim, _, _ = _small_sim(blocks=(2, 2))
        sim.subs[1].interior_view("u")[0, 0] = 0.9  # > c_s
        results = _run_diags(sim.subs, vmax=DEFAULT_VMAX)
        assert all(isinstance(r, DiagnosticsFailure) for r in results)
        assert all("CFL" in r.reason for r in results)

    def test_maybe_check_cadence(self):
        sim, _, _ = _small_sim(blocks=(1, 1))
        fabric = LocalFabric(1)
        diag = GlobalDiagnostics(
            Communicator(fabric.channel_set(0), 0, 1), every=5)
        sub = sim.subs[0]
        checked = []
        for _ in range(11):
            sim.step(1)
            rec = diag.maybe_check(sub)
            if rec is not None:
                checked.append(rec.step)
        assert checked == [5, 10]

    def test_disabled_period(self):
        sim, _, _ = _small_sim(blocks=(1, 1))
        fabric = LocalFabric(1)
        diag = GlobalDiagnostics(
            Communicator(fabric.channel_set(0), 0, 1), every=0)
        sim.step(1)
        assert diag.maybe_check(sim.subs[0]) is None

    def test_negative_period_rejected(self):
        fabric = LocalFabric(1)
        with pytest.raises(ValueError):
            GlobalDiagnostics(
                Communicator(fabric.channel_set(0), 0, 1), every=-1)


class TestThreadedRunnerDiagnostics:
    def test_threaded_stream_matches_serial(self):
        """ThreadedSimulation's collected records equal the serial
        runner's global_diagnostics at the same steps, bit for bit."""
        shape, blocks = (16, 12), (2, 2)
        rng = np.random.default_rng(9)
        params = FluidParams.lattice(2, nu=0.1, gravity=(1e-5, 0.0),
                                     filter_eps=0.02)
        fields = {
            "rho": 1.0 + 0.01 * rng.standard_normal(shape),
            "u": np.zeros(shape),
            "v": np.zeros(shape),
        }
        d = Decomposition(shape, blocks, periodic=(True, False))
        tsim = ThreadedSimulation(LBMethod(params, 2), d, fields,
                                  diag_every=4)
        ssim = Simulation(LBMethod(params, 2),
                          Decomposition(shape, blocks,
                                        periodic=(True, False)), fields)
        tsim.step(12)
        refs = []
        for _ in range(3):
            ssim.step(4)
            refs.append(ssim.global_diagnostics())
        assert [r.step for r in tsim.diagnostics] == [4, 8, 12]
        for got, ref in zip(tsim.diagnostics, refs):
            assert got.total_mass == ref.total_mass
            assert got.kinetic_energy == ref.kinetic_energy
            assert got.max_speed == ref.max_speed


# ----------------------------------------------------------------------
# end-to-end distributed runs
# ----------------------------------------------------------------------
def _spec(blocks=(2, 2)):
    return ProblemSpec(
        method="lb",
        grid_shape=(32, 24),
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )


@pytest.mark.slow
class TestDistributedDiagnostics:
    def test_clean_run_streams_diagnostics(self, tmp_path):
        """A healthy run logs a record every N steps, and the stream is
        bit-for-bit the serial runner's."""
        spec = _spec()
        fields = initial_fields(spec, "rest")
        out = run_distributed(
            spec, fields, tmp_path / "run",
            RunSettings(steps=20, diag_every=10),
        )
        assert "rho" in out
        log = DiagnosticsLog.for_workdir(tmp_path / "run")
        recs = log.read()
        assert [r.step for r in recs] == [10, 20]

        solid, _, _ = spec.build_geometry()
        d = Decomposition(spec.grid_shape, spec.blocks,
                          periodic=spec.periodic, solid=solid)
        sim = Simulation(spec.build_method(), d, fields, solid)
        for rec in recs:
            sim.step(10)
            ref = sim.global_diagnostics()
            assert rec.total_mass == ref.total_mass
            assert rec.kinetic_energy == ref.kinetic_energy
            assert rec.max_speed == ref.max_speed

    def test_nan_aborts_diagnosed_within_2n(self, tmp_path):
        """The acceptance criterion: a NaN injected at step 12 on rank 1
        aborts every worker with EXIT_DIAGNOSTIC by step 12 + 2*5, with
        the failure diagnosed in diag_failure.json — no stall timeout."""
        every, nan_step = 5, 12
        spec = _spec()
        fields = initial_fields(spec, "rest")
        run = DistributedRun(
            spec, fields, tmp_path / "run",
            RunSettings(steps=60, diag_every=every, nan_step=nan_step,
                        nan_rank=1, stall_timeout=120, run_timeout=240),
        )
        mon = run.start()
        with pytest.raises(MonitorError) as err:
            run.wait()
        assert "diagnostic" in str(err.value).lower()
        assert "non-finite" in str(err.value)
        # all workers exited with the diagnostic code, none were killed
        # by a stall timeout
        codes = {p.poll() for p in mon.procs.values()}
        assert codes == {EXIT_DIAGNOSTIC}

        failure = json.loads((tmp_path / "run" / "diag_failure.json")
                             .read_text())
        assert failure["reason"].startswith("non-finite")
        assert failure["record"]["n_nonfinite"] >= 1
        assert failure["record"]["step"] <= nan_step + 2 * every

    def test_diagnostics_over_udp_with_loss(self, tmp_path):
        """The diagnostic collectives survive the lossy datagram
        transport (acks + retransmission underneath)."""
        spec = _spec()
        fields = initial_fields(spec, "rest")
        out = run_distributed(
            spec, fields, tmp_path / "run",
            RunSettings(steps=20, diag_every=10, transport="udp",
                        udp_loss=0.05, run_timeout=240),
        )
        assert "rho" in out
        recs = DiagnosticsLog.for_workdir(tmp_path / "run").read()
        assert [r.step for r in recs] == [10, 20]

    @pytest.mark.parametrize("algorithm", ["tree", "ring"])
    def test_ring_and_tree_equal_streams(self, tmp_path, algorithm):
        spec = _spec()
        fields = initial_fields(spec, "rest")
        run_distributed(
            spec, fields, tmp_path / "run",
            RunSettings(steps=10, diag_every=5, diag_algorithm=algorithm),
        )
        recs = DiagnosticsLog.for_workdir(tmp_path / "run").read()
        assert [r.step for r in recs] == [5, 10]

    def test_message_save_barrier(self, tmp_path):
        """Checkpoint coordination by token passing instead of the
        App. B shared files — same checkpoints, same answer."""
        spec = _spec(blocks=(2, 1))
        fields = initial_fields(spec, "rest")

        solid, _, _ = spec.build_geometry()
        d = Decomposition(spec.grid_shape, (1, 1),
                          periodic=spec.periodic, solid=solid)
        serial = Simulation(spec.build_method(), d, fields, solid)
        serial.step(30)

        out = run_distributed(
            spec, fields, tmp_path / "run",
            RunSettings(steps=30, save_every=10, save_barrier="message",
                        run_timeout=240),
        )
        for name in serial.method.field_names:
            assert np.array_equal(out[name],
                                  serial.global_field(name)), name
        dumps = sorted(p.name
                       for p in (tmp_path / "run" / "dumps").iterdir())
        assert "ckpt000000010_rank0000.npz" in dumps
        assert "ckpt000000020_rank0001.npz" in dumps
        from repro.distrib import SaveTurns

        assert SaveTurns.latest_complete_step(tmp_path / "run") == 30
