"""The tracer itself: null gate, stream format, bounds, counters."""

import json
import threading

import pytest

from repro.trace import (
    CAT_COMM,
    CAT_COMPUTE,
    CAT_OTHER,
    NULL_TRACER,
    NullTracer,
    Tracer,
    load_trace,
    span_category,
)


class FakeClock:
    """A deterministic span clock advanced by the test."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# -- categories --------------------------------------------------------

@pytest.mark.parametrize("name,cat", [
    ("compute:0", CAT_COMPUTE),
    ("finalize:0", CAT_COMPUTE),
    ("exchange:1", CAT_COMM),
    ("collective:allreduce", CAT_COMM),
    ("barrier:step", CAT_COMM),
    ("token:send", CAT_COMM),
    ("wait:0", CAT_COMM),
    ("checkpoint:write", CAT_OTHER),
    ("migration:pause", CAT_OTHER),
    ("heartbeat:0", CAT_OTHER),
    ("brand-new-kind:x", CAT_OTHER),
])
def test_span_category(name, cat):
    assert span_category(name) == cat


# -- the null gate -----------------------------------------------------

def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.begin() == 0.0
    NULL_TRACER.end("compute:0", 0.0, step=3)
    NULL_TRACER.add_span("x:y", 0.0, 1.0)
    NULL_TRACER.count(1, 4096)
    NULL_TRACER.flush()
    NULL_TRACER.close()
    assert isinstance(NULL_TRACER, NullTracer)


def test_null_tracer_calls_allocate_nothing():
    """A begin/end/count cycle on the null gate is allocation-free."""
    from repro.harness import count_allocations

    names = ("compute:0", "exchange:0")  # precomputed, as in the runtimes

    def hot_loop():
        for i in range(1000):
            t0 = NULL_TRACER.begin()
            NULL_TRACER.end(names[0], t0, step=i)
            t0 = NULL_TRACER.begin()
            NULL_TRACER.end(names[1], t0, step=i, tid=1)
            NULL_TRACER.count(1, 4096)

    report = count_allocations(hot_loop, warmup=2, repeat=3)
    assert report.peak_bytes < 2048, report


def test_null_tracer_instrumented_step_stays_allocation_free():
    """The null-gated step allocates no more than the same cycle run
    with no tracer calls at all — instrumentation must not cost the
    fused kernels their allocation-freedom.  (The exchange itself
    copies ghost strips, so the comparison is differential, not an
    absolute zero.)"""
    from repro.harness import count_allocations
    from repro.fluids import FDMethod
    from tests.conftest import channel_sim

    sim = channel_sim(FDMethod, shape=(64, 64), blocks=(2, 2))
    assert sim.tracer is NULL_TRACER
    method, subs, exchanger = sim.method, sim.subs, sim.exchanger

    def bare_step():
        for phase, fnames in enumerate(method.exchange_phases):
            for sub in subs:
                method.compute_phase(sub, phase)
            exchanger.exchange(fnames)
        for sub in subs:
            method.finalize_step(sub)
            sub.step += 1

    sim.step(3)  # fill the scratch pools
    bare = count_allocations(bare_step, warmup=2, repeat=3)
    gated = count_allocations(lambda: sim.step(1), warmup=2, repeat=3)
    assert gated.peak_bytes <= bare.peak_bytes + 2048, (bare, gated)


# -- the real stream ---------------------------------------------------

def test_meta_line_written_eagerly(tmp_path):
    path = tmp_path / "trace-0000.jsonl"
    Tracer(path, rank=3)
    first = json.loads(path.read_text().splitlines()[0])
    assert first["type"] == "meta"
    assert first["rank"] == 3
    assert first["wall_t0"] > 0 and first["clock_t0"] > 0
    assert first["sim"] is False


def test_span_roundtrip(tmp_path):
    clock = FakeClock()
    tr = Tracer(tmp_path / "t.jsonl", rank=1, clock=clock)
    clock.now = 1.0
    t0 = tr.begin()
    clock.now = 1.5
    tr.end("compute:0", t0, step=7, tid=2)
    tr.add_span("exchange:0", 1.5, 0.25, step=7)
    tr.close()
    t = load_trace(tmp_path / "t.jsonl")
    assert [s["name"] for s in t["spans"]] == ["compute:0", "exchange:0"]
    comp = t["spans"][0]
    assert comp == {"type": "span", "name": "compute:0",
                    "cat": CAT_COMPUTE, "ts": 1.0, "dur": 0.5,
                    "step": 7, "tid": 2}
    assert t["end"] == {"type": "end", "spans": 2, "dropped": 0}


def test_stream_is_bounded(tmp_path):
    tr = Tracer(tmp_path / "t.jsonl", max_events=5, flush_every=2)
    for i in range(9):
        tr.add_span("compute:0", float(i), 0.1, step=i)
    tr.close()
    t = load_trace(tmp_path / "t.jsonl")
    assert len(t["spans"]) == 5
    assert t["end"]["dropped"] == 4


def test_counters_accumulate_and_snapshot(tmp_path):
    tr = Tracer(tmp_path / "t.jsonl", rank=0)
    tr.count(1, 100)
    tr.count(1, 50)
    tr.count(2, 7, sent=False)
    tr.close()
    t = load_trace(tmp_path / "t.jsonl")
    latest = {(c["peer"], c["dir"]): (c["msgs"], c["bytes"])
              for c in t["counters"]}
    assert latest[(1, "sent")] == (2, 150)
    assert latest[(2, "recvd")] == (1, 7)


def test_spans_after_close_are_dropped_silently(tmp_path):
    tr = Tracer(tmp_path / "t.jsonl")
    tr.close()
    tr.add_span("compute:0", 0.0, 1.0)
    tr.close()  # idempotent
    t = load_trace(tmp_path / "t.jsonl")
    assert t["spans"] == []
    assert t["end"]["spans"] == 0


def test_tracer_is_thread_safe(tmp_path):
    tr = Tracer(tmp_path / "t.jsonl", flush_every=16)

    def spam(tid):
        for i in range(500):
            tr.add_span("compute:0", float(i), 0.001, step=i, tid=tid)
            tr.count(tid, 8)

    threads = [threading.Thread(target=spam, args=(k,)) for k in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    tr.close()
    t = load_trace(tmp_path / "t.jsonl")
    assert len(t["spans"]) == 2000
    assert t["end"]["dropped"] == 0


def test_simulated_stream_has_zero_origins(tmp_path):
    tr = Tracer(tmp_path / "t.jsonl", rank=2, sim=True)
    tr.add_span("compute:0", 10.0, 1.0, step=0)
    tr.close()
    t = load_trace(tmp_path / "t.jsonl")
    assert t["meta"]["sim"] is True
    assert t["meta"]["wall_t0"] == 0.0
    assert t["meta"]["clock_t0"] == 0.0


def test_torn_tail_line_tolerated(tmp_path):
    path = tmp_path / "t.jsonl"
    tr = Tracer(path)
    tr.add_span("compute:0", 0.0, 1.0)
    tr.flush()
    with open(path, "a") as fh:
        fh.write('{"type": "span", "name": "exch')  # killed mid-append
    t = load_trace(path)
    assert len(t["spans"]) == 1
    assert t["end"] is None
