"""Merging rank streams and the §7 breakdown derived from them."""

import json

import pytest

from repro.trace import (
    Tracer,
    format_breakdown_table,
    merge_traces,
    summarize,
    trace_files,
    write_chrome_trace,
    write_trace_bench,
)


def _rank_trace(tmp_path, rank, wall_t0=None, gen=""):
    """One rank's stream with known span content."""
    name = f"trace-{rank:04d}{gen}.jsonl"
    tr = Tracer(tmp_path / name, rank=rank, sim=True)
    if wall_t0 is not None:
        tr.wall_t0 = wall_t0  # exercise cross-rank alignment
        meta = json.loads((tmp_path / name).read_text().splitlines()[0])
        meta["wall_t0"] = wall_t0
        (tmp_path / name).write_text(json.dumps(meta) + "\n")
    for step in range(3):
        base = step * 1.0
        tr.add_span("compute:0", base, 0.6, step=step)
        tr.add_span("exchange:0", base + 0.6, 0.3, step=step)
        tr.add_span("heartbeat:0", base + 0.9, 0.1, step=step + 1)
    tr.count(rank + 1, 1000)
    tr.count(rank + 1, 24, sent=False)
    tr.close()
    return tmp_path / name


def test_trace_files_resolution(tmp_path):
    run = tmp_path / "run"
    (run / "trace").mkdir(parents=True)
    f = run / "trace" / "trace-0000.jsonl"
    f.write_text("")
    assert trace_files(run) == [f]          # workdir -> trace/ subdir
    assert trace_files(run / "trace") == [f]
    assert trace_files(f) == [f]
    with pytest.raises(FileNotFoundError):
        trace_files(tmp_path / "empty")


def test_summarize_breakdown(tmp_path):
    _rank_trace(tmp_path, 0)
    _rank_trace(tmp_path, 1)
    s = summarize(tmp_path)
    assert s.n_ranks == 2
    assert s.simulated is True
    r0 = s.ranks[0]
    assert r0.t_comp == pytest.approx(1.8)
    assert r0.t_comm == pytest.approx(0.9)
    assert r0.t_other == pytest.approx(0.3)
    # steps come from compute spans only: the trailing heartbeat
    # carries step 3 and must not count
    assert r0.steps == 3
    assert r0.bytes_sent == 1000 and r0.messages_sent == 1
    assert r0.bytes_recvd == 24
    assert r0.utilization == pytest.approx(1.8 / 3.0)
    assert s.utilization == pytest.approx(0.6)
    per = s.per_step()
    assert per["t_comp"] == pytest.approx(0.6)
    assert per["t_comm"] == pytest.approx(0.3)


def test_summarize_merges_generations_of_one_rank(tmp_path):
    """A migrated-and-restarted rank leaves trace-NNNN.jsonl plus
    trace-NNNN.gG.jsonl; both accumulate into one breakdown."""
    _rank_trace(tmp_path, 0)
    _rank_trace(tmp_path, 0, gen=".g1")
    s = summarize(tmp_path)
    assert s.n_ranks == 1
    assert s.ranks[0].t_comp == pytest.approx(3.6)
    assert s.ranks[0].steps == 3  # same steps, recomputed after restart


def test_breakdown_table_mentions_eq8(tmp_path):
    _rank_trace(tmp_path, 0)
    table = format_breakdown_table(summarize(tmp_path))
    assert "f (eq. 8)" in table
    assert "simulated" in table
    assert "0.600" in table


def test_write_trace_bench(tmp_path):
    _rank_trace(tmp_path, 0)
    out = write_trace_bench(summarize(tmp_path), tmp_path / "B.json",
                            extra={"note": 1})
    data = json.loads(out.read_text())
    assert data["utilization"] == pytest.approx(0.6)
    assert data["ranks"][0]["rank"] == 0
    assert data["note"] == 1


def test_merge_to_chrome_events(tmp_path):
    _rank_trace(tmp_path, 0)
    _rank_trace(tmp_path, 1)
    merged = merge_traces(trace_files(tmp_path))
    events = merged["traceEvents"]
    assert merged["otherData"]["ranks"] == 2
    assert merged["otherData"]["simulated"] is True
    names = {e["ph"] for e in events}
    assert names == {"M", "X", "C"}
    procs = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    assert procs == {0: "rank 0", 1: "rank 1"}
    comp = [e for e in events if e["ph"] == "X" and e["name"] == "compute:0"
            and e["pid"] == 1]
    assert comp[0]["ts"] == pytest.approx(0.0)
    assert comp[0]["dur"] == pytest.approx(0.6e6)  # microseconds
    assert comp[0]["args"]["step"] == 0


def test_wall_clock_alignment_shifts_ranks(tmp_path):
    """Rank 1 started 2 wall seconds after rank 0: its spans shift."""
    _rank_trace(tmp_path, 0, wall_t0=100.0)
    _rank_trace(tmp_path, 1, wall_t0=102.0)
    merged = merge_traces(trace_files(tmp_path))
    first = {pid: min(e["ts"] for e in merged["traceEvents"]
                      if e.get("ph") == "X" and e["pid"] == pid)
             for pid in (0, 1)}
    assert first[0] == pytest.approx(0.0)
    assert first[1] == pytest.approx(2.0e6)


def test_write_chrome_trace_is_valid_json(tmp_path):
    _rank_trace(tmp_path, 0)
    out = write_chrome_trace(tmp_path, tmp_path / "out" / "trace.json")
    data = json.loads(out.read_text())
    assert data["displayTimeUnit"] == "ms"
    assert all("ph" in e for e in data["traceEvents"])
