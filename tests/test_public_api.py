"""Meta-tests on the public API surface.

Every name exported through ``__all__`` must resolve, and every public
callable must carry a docstring — the deliverable is a library, and a
library's documentation contract is testable.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.fluids",
    "repro.net",
    "repro.distrib",
    "repro.cluster",
    "repro.balance",
    "repro.graph",
    "repro.harness",
    "repro.serve",
    "repro.trace",
    "repro.viz",
    "repro.tools",
]


@pytest.mark.parametrize("modname", PACKAGES)
def test_module_docstring(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, modname


@pytest.mark.parametrize("modname", PACKAGES)
def test_all_exports_resolve(modname):
    mod = importlib.import_module(modname)
    exported = getattr(mod, "__all__", [])
    for name in exported:
        assert hasattr(mod, name), f"{modname}.{name} in __all__ missing"


@pytest.mark.parametrize("modname", [p for p in PACKAGES if p != "repro"])
def test_public_callables_documented(modname):
    mod = importlib.import_module(modname)
    undocumented = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if callable(obj) and not inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
        elif inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if callable(meth) and not (
                    getattr(meth, "__doc__", "") or ""
                ).strip():
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{modname}: public API without docstrings: {undocumented}"
    )


def test_version():
    import repro

    assert repro.__version__


def test_facade_exports():
    """The unified entry point is importable from the top level."""
    import repro

    assert callable(repro.run)
    assert inspect.isclass(repro.RunResult)
    assert repro.BACKENDS == ("serial", "threaded", "distributed",
                              "simulated", "service")
    for name in ("run", "RunResult", "trace"):
        assert name in repro.__all__, name


def test_trace_exports():
    """The tracing layer's contract surface."""
    from repro import trace

    for name in ("NullTracer", "Tracer", "NULL_TRACER", "span_category",
                 "merge_traces", "write_chrome_trace", "summarize",
                 "TraceSummary", "format_breakdown_table"):
        assert name in trace.__all__, name
    assert trace.NULL_TRACER.enabled is False


@pytest.mark.slow
def test_distributed_trace_round_trip(tmp_path):
    """A real 4-rank run's per-rank streams merge into valid Chrome
    trace-event JSON: one pid lane per rank, complete events with
    microsecond timestamps, and a consistent §7 summary."""
    import json

    import repro
    from repro.distrib import ProblemSpec, RunSettings

    spec = ProblemSpec(
        method="fd",
        grid_shape=(32, 24),
        blocks=(2, 2),
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )
    r = repro.run(spec, "distributed",
                  RunSettings(steps=8, trace=True),
                  workdir=tmp_path / "run")
    data = json.loads(r.trace_path.read_text())
    assert set(data) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert data["otherData"]["ranks"] == 4
    events = data["traceEvents"]
    pids = {e["pid"] for e in events}
    assert pids == {0, 1, 2, 3}
    complete = [e for e in events if e["ph"] == "X"]
    assert complete, "no complete events in the merged trace"
    for e in complete:
        assert e["dur"] >= 0 and "ts" in e and "name" in e
    # every rank contributed compute and exchange spans for every step
    for pid in pids:
        names = {e["name"] for e in complete if e["pid"] == pid}
        assert "compute:0" in names and "exchange:0" in names
    assert r.trace_summary.n_ranks == 4
    assert all(bd.steps == 8 for bd in r.trace_summary.ranks)


def test_no_accidental_numpy_reexport():
    """Submodule namespaces stay clean: no `np`/`numpy` leaking through
    __all__ anywhere."""
    for modname in PACKAGES:
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            assert name not in ("np", "numpy"), modname
