"""Meta-tests on the public API surface.

Every name exported through ``__all__`` must resolve, and every public
callable must carry a docstring — the deliverable is a library, and a
library's documentation contract is testable.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.fluids",
    "repro.net",
    "repro.distrib",
    "repro.cluster",
    "repro.harness",
    "repro.viz",
    "repro.tools",
]


@pytest.mark.parametrize("modname", PACKAGES)
def test_module_docstring(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 20, modname


@pytest.mark.parametrize("modname", PACKAGES)
def test_all_exports_resolve(modname):
    mod = importlib.import_module(modname)
    exported = getattr(mod, "__all__", [])
    for name in exported:
        assert hasattr(mod, name), f"{modname}.{name} in __all__ missing"


@pytest.mark.parametrize("modname", [p for p in PACKAGES if p != "repro"])
def test_public_callables_documented(modname):
    mod = importlib.import_module(modname)
    undocumented = []
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if callable(obj) and not inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
        elif inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if callable(meth) and not (
                    getattr(meth, "__doc__", "") or ""
                ).strip():
                    undocumented.append(f"{name}.{meth_name}")
    assert not undocumented, (
        f"{modname}: public API without docstrings: {undocumented}"
    )


def test_version():
    import repro

    assert repro.__version__


def test_no_accidental_numpy_reexport():
    """Submodule namespaces stay clean: no `np`/`numpy` leaking through
    __all__ anywhere."""
    for modname in PACKAGES:
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            assert name not in ("np", "numpy"), modname
