"""The sweep driver: grid expansion, manifest resume, reports.

The executor is stubbed — these tests exercise the driver logic, not
the solvers (the slow e2e test runs a real sweep through a live
gateway).
"""

import json

import numpy as np
import pytest

from repro.scenarios import (
    Case,
    Param,
    Scenario,
    Score,
    expand_grid,
    parse_grid,
    run_sweep,
    write_report,
)
from repro.scenarios import sweep as sweep_mod
from repro.distrib import ProblemSpec


class TestParseGrid:
    def test_types(self):
        grid = parse_grid(["Re=100,400", "nu=0.1,0.2", "method=lb,fd",
                           "flag=true"])
        assert grid["Re"] == [100, 400]
        assert grid["nu"] == [0.1, 0.2]
        assert grid["method"] == ["lb", "fd"]
        assert grid["flag"] == [True]

    def test_malformed_is_loud(self):
        with pytest.raises(ValueError, match="must look like"):
            parse_grid(["Re"])
        with pytest.raises(ValueError, match="must look like"):
            parse_grid(["Re="])

    def test_duplicate_is_loud(self):
        with pytest.raises(ValueError, match="twice"):
            parse_grid(["Re=100", "Re=400"])


class TestExpandGrid:
    def test_cartesian_product_is_deterministic(self):
        points = expand_grid({"a": [1, 2], "b": ["x", "y"]})
        assert points == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_empty_grid_is_the_default_point(self):
        assert expand_grid({}) == [{}]


class FakeScenario(Scenario):
    """Scores pass iff nu <= 0.5; the 'run' is a stub."""

    name = "fake"
    version = 3
    title = "driver-test scenario"
    reference = "none"
    params = {
        "nu": Param(0.1, "viscosity", lo=0.0, hi=1.0),
        "n": Param(8, "box side", lo=4, hi=64),
    }

    def _build(self, p):
        spec = ProblemSpec(
            method="lb", grid_shape=(p["n"], p["n"]), blocks=(1, 1),
            periodic=(True, True), params={"nu": p["nu"]},
        )
        return Case(spec, {"steps": 10, "diag_every": 5})

    def _score(self, p, fields, diagnostics):
        return Score.check({"nu": p["nu"]}, {"nu": 0.5})


class _StubResult:
    def __init__(self):
        self.fields = {"rho": np.ones((4, 4))}
        self.diagnostics = []
        self.elapsed = 2.0


@pytest.fixture
def stub_runs(monkeypatch):
    calls = []

    def fake_run_case(case, backend="serial", workdir=None):
        calls.append(case)
        return _StubResult()

    monkeypatch.setattr(sweep_mod, "run_case", fake_run_case)
    return calls


class TestRunSweep:
    def test_scores_every_point(self, stub_runs, tmp_path):
        points = run_sweep(
            FakeScenario(), {"nu": [0.1, 0.9]}, out_dir=tmp_path
        )
        assert [p.passed for p in points] == [True, False]
        assert len(stub_runs) == 2
        # throughput from grid nodes x steps / elapsed
        assert points[0].nodes_per_sec == pytest.approx(8 * 8 * 10 / 2.0)

    def test_manifest_resume_skips_settled_points(self, stub_runs,
                                                  tmp_path):
        scenario = FakeScenario()
        run_sweep(scenario, {"nu": [0.1, 0.2]}, out_dir=tmp_path)
        assert len(stub_runs) == 2
        # second run: one old point, one new — only the new one runs
        points = run_sweep(scenario, {"nu": [0.2, 0.3]},
                           out_dir=tmp_path)
        assert len(stub_runs) == 3
        assert all(p.state == "done" for p in points)
        # the manifest now settles all three
        lines = (tmp_path / "sweep.jsonl").read_text().splitlines()
        assert len(lines) == 3

    def test_resume_ignores_other_scenario_versions(self, stub_runs,
                                                    tmp_path):
        scenario = FakeScenario()
        run_sweep(scenario, {"nu": [0.1]}, out_dir=tmp_path)
        bumped = FakeScenario()
        bumped.version = 4
        run_sweep(bumped, {"nu": [0.1]}, out_dir=tmp_path)
        assert len(stub_runs) == 2, \
            "a version bump must invalidate manifest entries"

    def test_no_resume_recomputes(self, stub_runs, tmp_path):
        scenario = FakeScenario()
        run_sweep(scenario, {"nu": [0.1]}, out_dir=tmp_path)
        run_sweep(scenario, {"nu": [0.1]}, out_dir=tmp_path,
                  resume=False)
        assert len(stub_runs) == 2

    def test_one_bad_point_does_not_sink_the_sweep(self, monkeypatch,
                                                   tmp_path):
        def exploding_run_case(case, backend="serial", workdir=None):
            if case.spec.params["nu"] == 0.2:
                raise RuntimeError("boom")
            return _StubResult()

        monkeypatch.setattr(sweep_mod, "run_case", exploding_run_case)
        points = run_sweep(FakeScenario(), {"nu": [0.1, 0.2, 0.3]},
                           out_dir=tmp_path)
        assert [p.state for p in points] == ["done", "failed", "done"]
        assert "boom" in points[1].error

    def test_invalid_grid_value_is_loud_before_any_run(self, stub_runs):
        with pytest.raises(ValueError, match="above maximum"):
            run_sweep(FakeScenario(), {"nu": [0.1, 5.0]})
        assert not stub_runs


class TestWriteReport:
    def test_summary_files(self, stub_runs, tmp_path):
        scenario = FakeScenario()
        points = run_sweep(scenario, {"nu": [0.1, 0.9]},
                           out_dir=tmp_path)
        md = write_report(points, tmp_path, scenario)
        text = md.read_text()
        assert "| params | score | nu | nodes/s |" in text
        assert "**FAIL**" in text and "pass" in text
        assert "## Failures" in text
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["passed"] == 1 and summary["failed"] == 1
        assert len(summary["points"]) == 2
