"""The sweep engine against a live gateway (the cluster executor).

The contract under test: a sweep fans its grid through the service as
one batch, every point comes back scored, and re-running the same
sweep computes nothing — identical points are answered entirely from
the gateway's result cache, diagnostics included (the scores must come
out identical to the computed pass).
"""

import pytest

from repro.scenarios import get, run_sweep, write_report

pytestmark = pytest.mark.slow

# steps=100 gives the conservation scorer two mass samples (its
# diag_every is 50), so the mass-drift gate engages
GRID = {"method": ["lb", "fd"], "n": [16], "steps": [100]}


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    from repro.serve import Gateway

    gw = Gateway(tmp_path_factory.mktemp("serve"), workers=2,
                 poll=0.02)
    gw.start_background()
    yield gw
    gw.shutdown()


class TestSweepThroughGateway:
    def test_second_sweep_is_fully_cached(self, gateway, tmp_path):
        from repro.serve import ServeClient

        scenario = get("conservation")
        first = run_sweep(scenario, GRID, server=gateway.address,
                          out_dir=tmp_path / "first")
        assert [p.state for p in first] == ["done", "done"]
        assert all(p.passed for p in first), \
            [p.score for p in first]
        assert not any(p.cached for p in first)
        assert all(p.job_id for p in first)
        assert all(p.nodes_per_sec > 0 for p in first)

        # a fresh manifest directory, so the cache (not the resume
        # journal) must answer
        second = run_sweep(scenario, GRID, server=gateway.address,
                           out_dir=tmp_path / "second")
        assert all(p.cached for p in second), \
            "identical points must be cache hits on the second sweep"
        assert all(p.passed for p in second)
        # cached diagnostics replay must reproduce the exact score
        for a, b in zip(first, second):
            assert a.score["residuals"] == b.score["residuals"]

        # the gateway computed each distinct point exactly once
        client = ServeClient(gateway.address)
        jobs = client.jobs()
        computed = [j for j in jobs if not j.get("cached")]
        assert len(computed) == len(first)
        assert all(j["state"] == "done" for j in jobs)

    def test_reports_from_a_service_sweep(self, gateway, tmp_path):
        scenario = get("conservation")
        points = run_sweep(scenario, GRID, server=gateway.address,
                           out_dir=tmp_path)
        md = write_report(points, tmp_path, scenario)
        text = md.read_text()
        assert "mass_drift" in text
        assert "cached" in text  # cache hits show in the nodes/s column
