"""The scenario registry contract: schemas, builders, scores.

Everything here is synthetic — cases are built and scored against
hand-constructed fields, no time stepping — so the whole scenario
contract stays inside the fast tier.  The physics of each scenario is
exercised by the slow sweep tests and ``repro bench --sweep``.
"""

import json

import numpy as np
import pytest

import repro.scenarios as sc
from repro.distrib import ProblemSpec
from repro.distrib.diagnostics import DiagRecord
from repro.fluids.analytic import poiseuille_profile
from repro.scenarios import Case, Param, Scenario, Score
from repro.scenarios.base import diag_series
from repro.scenarios.library import HOU_CAVITY_CENTERS


class TestRegistry:
    def test_at_least_ten_scenarios(self):
        assert len(sc.names()) >= 10

    def test_every_scenario_is_described_and_scored(self):
        for s in sc.all_scenarios():
            d = s.describe()
            assert d["name"] == s.name
            assert d["title"] and d["reference"]
            assert d["version"] >= 1
            assert d["params"], f"{s.name} has no parameter schema"
            json.dumps(d)  # must be JSON-serializable for the CLI
            # a real score() implementation, not the base stub
            assert type(s)._score is not Scenario._score, s.name

    def test_every_case_round_trips_through_json(self):
        """A case must survive the serve layer: spec -> JSON -> spec."""
        for s in sc.all_scenarios():
            case = s.case()
            clone = ProblemSpec.from_json(case.spec.to_json())
            assert clone == case.spec, s.name
            assert case.settings.get("steps", 0) > 0, s.name
            json.dumps(case.settings)

    def test_get_unknown_name_is_loud(self):
        with pytest.raises(KeyError, match="available"):
            sc.get("warp_drive")

    def test_duplicate_registration_is_loud(self):
        with pytest.raises(ValueError, match="already registered"):
            sc.register(sc.get("poiseuille"))


class TestParamSchema:
    def test_defaults_and_overrides(self):
        s = sc.get("poiseuille")
        p = s.resolve()
        assert p["ny"] == 32
        p = s.resolve(ny=64)
        assert p["ny"] == 64 and p["nu"] == 0.1

    def test_unknown_param_is_loud(self):
        with pytest.raises(ValueError, match="no params"):
            sc.get("poiseuille").resolve(Re=100)

    def test_out_of_range_is_loud(self):
        with pytest.raises(ValueError, match="below minimum"):
            sc.get("poiseuille").resolve(ny=2)
        with pytest.raises(ValueError, match="above maximum"):
            sc.get("poiseuille").resolve(nu=10.0)

    def test_choices_are_enforced(self):
        with pytest.raises(ValueError, match="not in"):
            sc.get("cavity").resolve(Re=250)

    def test_numeric_strings_coerce(self):
        """Grid values arrive as parsed CLI text; ints must stay ints."""
        p = sc.get("cavity").resolve(Re=400)
        assert isinstance(p["Re"], int)
        param = Param(1.0, "x")
        assert param.validate("x", 2) == 2.0


class TestScore:
    def test_check_gates_bounded_residuals(self):
        score = Score.check({"a": 0.5, "b": 3.0}, {"a": 1.0, "b": 2.0})
        assert not score.passed
        assert score.failures == ["b: 3 > 2"]

    def test_missing_or_nonfinite_residual_fails(self):
        assert not Score.check({}, {"a": 1.0}).passed
        assert not Score.check({"a": float("nan")}, {"a": 1.0}).passed

    def test_unbounded_residuals_only_report(self):
        score = Score.check({"a": 0.5, "extra": 99.0}, {"a": 1.0})
        assert score.passed
        assert score.residuals["extra"] == 99.0

    def test_to_dict_round_trips_json(self):
        score = Score.check({"a": 0.5}, {"a": 1.0}, {"note": "hi"})
        clone = json.loads(json.dumps(score.to_dict()))
        assert clone["passed"] is True
        assert clone["details"] == {"note": "hi"}


class TestDiagSeries:
    def test_accepts_records_and_dicts(self):
        recs = [DiagRecord(step=10, total_mass=1.0, kinetic_energy=0.5,
                           max_speed=0.1, n_nonfinite=0)]
        dicts = [{"step": 10, "total_mass": 1.0, "kinetic_energy": 0.5,
                  "max_speed": 0.1, "n_nonfinite": 0}]
        for diags in (recs, dicts):
            np.testing.assert_allclose(
                diag_series(diags, "total_mass"), [1.0]
            )
        assert diag_series(recs, "no_such_column").size == 0


def _diags(mass):
    return [
        {"step": 100 * i, "total_mass": m, "kinetic_energy": 1.0,
         "max_speed": 0.01, "n_nonfinite": 0}
        for i, m in enumerate(mass)
    ]


class TestPoiseuilleScore:
    """Scored against the exact solution — no simulation needed."""

    def _fields(self, s, method, scale=1.0):
        p = s.resolve(method=method)
        case = s.case(method=method)
        nx, ny = case.spec.grid_shape
        offset = 0.5 if method == "lb" else 0.0
        span = (ny - 2.0) if method == "lb" else (ny - 1.0)
        y = np.arange(ny, dtype=float) - offset
        u = np.tile(
            poiseuille_profile(y, span, p["g"], p["nu"]) * scale, (nx, 1)
        )
        u[:, 0] = u[:, -1] = 0.0
        return {"u": u, "v": np.zeros((nx, ny)),
                "rho": np.ones((nx, ny))}

    @pytest.mark.parametrize("method", ["lb", "fd"])
    def test_exact_profile_passes(self, method):
        s = sc.get("poiseuille")
        score = s.score(self._fields(s, method),
                        _diags([100.0, 100.0]), method=method)
        assert score.passed, score.failures
        assert score.residuals["profile_err"] < 1e-12

    def test_perturbed_profile_fails(self):
        s = sc.get("poiseuille")
        score = s.score(self._fields(s, "lb", scale=1.05),
                        _diags([100.0, 100.0]))
        assert not score.passed
        assert "profile_err" in score.failures[0]

    def test_mass_drift_gates_when_sampled(self):
        s = sc.get("poiseuille")
        score = s.score(self._fields(s, "lb"), _diags([100.0, 101.0]))
        assert not score.passed
        assert any("mass_drift" in f for f in score.failures)


class TestCavityScore:
    def _vortex_fields(self, s, Re, at):
        """A synthetic swirl centered at cavity fraction ``at``."""
        case = s.case(Re=Re)
        nx, ny = case.spec.grid_shape
        n = nx - 2
        cx, cy = at[0] * n + 0.5, at[1] * n + 0.5
        x = np.arange(nx)[:, None] - cx
        y = np.arange(ny)[None, :] - cy
        r2 = (x * x + y * y) / (0.15 * n) ** 2
        swirl = 0.05 * np.exp(-r2)
        u, v = -y * swirl, x * swirl
        solid, _, _ = case.spec.build_geometry()
        u[solid] = v[solid] = 0.0
        return {"u": u, "v": v, "rho": np.ones((nx, ny))}

    @pytest.mark.parametrize("Re", sorted(HOU_CAVITY_CENTERS))
    def test_vortex_at_hou_center_passes(self, Re):
        s = sc.get("cavity")
        fields = self._vortex_fields(s, Re, HOU_CAVITY_CENTERS[Re])
        score = s.score(fields, Re=Re)
        assert score.passed, score.failures

    def test_vortex_far_from_reference_fails(self):
        s = sc.get("cavity")
        fields = self._vortex_fields(s, 100, (0.3, 0.3))
        score = s.score(fields, Re=100)
        assert not score.passed
        assert any("center_err" in f for f in score.failures)


class TestStructuralScores:
    def test_flue_pipe_needs_a_diagnostics_series(self):
        s = sc.get("flue_pipe")
        case = s.case()
        shape = case.spec.grid_shape
        fields = {name: np.zeros(shape) for name in ("u", "v")}
        fields["rho"] = np.ones(shape)
        score = s.score(fields, [])
        assert not score.passed
        assert "diagnostics" in score.failures[0]

    def test_conservation_needs_a_diagnostics_series(self):
        s = sc.get("conservation")
        score = s.score({"rho": np.ones((8, 8))}, [])
        assert not score.passed

    def test_conservation_gates_drift(self):
        s = sc.get("conservation")
        good = s.score({}, _diags([100.0, 100.0]))
        assert good.passed, good.failures
        bad = s.score({}, _diags([100.0, 100.0 + 1e-3]))
        assert not bad.passed

    def test_flue_pipe_channel_counts_inactive_blocks(self):
        """The fig. 2 geometry idles whole subregions of the 4x4 cut."""
        s = sc.get("flue_pipe_channel")
        case = s.case()
        decomp = case.spec.build_decomposition()
        total = int(np.prod(case.spec.blocks))
        assert len(decomp.active_blocks()) < total


class TestCaseSpecs:
    def test_cavity_viscosity_tracks_reynolds(self):
        s = sc.get("cavity")
        nu100 = s.case(Re=100).spec.params["nu"]
        nu400 = s.case(Re=400, n=64).spec.params["nu"]
        assert nu100 == pytest.approx(4 * nu400)

    def test_hybrid_channel_is_a_v2_spec(self):
        spec = sc.get("hybrid_channel").case().spec
        assert spec.is_hybrid
        assert spec.spec_version == 2
        assert set(spec.method_names) == {"fd", "lb"}

    def test_cylinder_wake_has_impulsive_start(self):
        spec = sc.get("cylinder_wake").case().spec
        assert spec.init["kind"] == "uniform_flow"

    def test_duct3d_is_three_dimensional(self):
        spec = sc.get("duct3d").case().spec
        assert spec.ndim == 3
