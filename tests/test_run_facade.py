"""The repro.run() facade: one call, four backends, one RunResult."""

import json

import numpy as np
import pytest

import repro
from repro.distrib import ProblemSpec, RunSettings


def _spec(method="fd", grid=(32, 24), blocks=(2, 2)):
    return ProblemSpec(
        method=method,
        grid_shape=grid,
        blocks=blocks,
        periodic=(True, False),
        params={"nu": 0.1, "gravity": (1e-5, 0.0), "filter_eps": 0.02},
        geometry={"kind": "channel"},
    )


def test_serial_runs_and_returns_fields():
    r = repro.run(_spec(), steps=5)
    assert r.backend == "serial" and r.steps == 5
    assert sorted(r.fields) == ["rho", "u", "v"]
    assert np.isfinite(r.fields["rho"]).all()
    assert r.trace_path is None and r.utilization is None
    assert r.timings == {}


def test_threaded_matches_serial_bitwise():
    serial = repro.run(_spec(), steps=8)
    threaded = repro.run(_spec(), "threaded", steps=8)
    assert threaded.backend == "threaded"
    for name in serial.fields:
        assert np.array_equal(serial.fields[name],
                              threaded.fields[name]), name


@pytest.mark.parametrize("backend", ["serial", "threaded"])
def test_traced_run_attaches_summary(tmp_path, backend):
    rs = RunSettings(steps=6, trace=True, diag_every=3)
    r = repro.run(_spec(), backend, rs, workdir=tmp_path)
    assert r.trace_path is not None and r.trace_path.exists()
    data = json.loads(r.trace_path.read_text())
    assert data["traceEvents"], "merged Chrome trace is empty"
    assert r.trace_summary.ranks[0].steps == 6
    assert 0.0 < r.utilization <= 1.0
    assert set(r.timings[0]) == {"t_comp", "t_comm", "t_other",
                                 "utilization"}
    # in-flight diagnostics sampled at steps 3 and 6
    assert [d.step for d in r.diagnostics] == [3, 6]


def test_traced_time_bounded_by_elapsed(tmp_path):
    """The trace cannot account more serial time than actually passed."""
    r = repro.run(_spec(), "serial", RunSettings(steps=6, trace=True),
                  workdir=tmp_path)
    t_total = r.trace_summary.ranks[0].t_total
    assert 0.0 < t_total <= r.elapsed * 1.05


def test_diagnostics_match_across_backends(tmp_path):
    rs = RunSettings(steps=6, diag_every=3)
    serial = repro.run(_spec(), "serial", rs)
    threaded = repro.run(_spec(), "threaded", rs)
    assert len(serial.diagnostics) == len(threaded.diagnostics) == 2
    for a, b in zip(serial.diagnostics, threaded.diagnostics):
        assert a.step == b.step
        assert a.total_mass == pytest.approx(b.total_mass)


def test_simulated_backend(tmp_path):
    spec = _spec(grid=(100, 100), blocks=(2, 2))
    rs = RunSettings(steps=20, trace=True)
    r = repro.run(spec, "simulated", rs, workdir=tmp_path)
    assert r.backend == "simulated"
    assert r.fields is None, "the simulated backend models time only"
    assert r.sim.processors == 4
    assert r.elapsed == pytest.approx(r.sim.elapsed)
    assert r.trace_summary.n_ranks == 4
    assert r.trace_summary.simulated is True
    # the trace's utilization must agree with the simulator's own
    # compute-time accounting (same discrete events, two bookkeepers)
    sim_f = r.sim.compute_time_total / (r.sim.processors * r.sim.elapsed)
    assert r.utilization == pytest.approx(sim_f, rel=0.05)


def test_simulated_backend_requires_uniform_side():
    with pytest.raises(ValueError, match="uniform"):
        repro.run(_spec(grid=(32, 24)), "simulated", steps=3)


def test_simulated_backend_rejects_fields():
    spec = _spec(grid=(64, 64))
    with pytest.raises(ValueError, match="field data"):
        repro.run(spec, "simulated", steps=3,
                  fields={"rho": np.ones((64, 64))})


def test_bad_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        repro.run(_spec(), "mpi", steps=1)


def test_steps_and_settings_must_agree():
    with pytest.raises(ValueError, match="contradicts"):
        repro.run(_spec(), "serial", RunSettings(steps=5), steps=9)
    with pytest.raises(ValueError, match="steps= or settings="):
        repro.run(_spec())


@pytest.mark.slow
def test_distributed_backend_end_to_end(tmp_path):
    """4 worker processes through the facade: fields match serial,
    diagnostics and the merged trace come back on the result."""
    rs = RunSettings(steps=10, trace=True, diag_every=5)
    r = repro.run(_spec(), "distributed", rs, workdir=tmp_path / "run")
    serial = repro.run(_spec(), steps=10)
    for name in serial.fields:
        assert np.array_equal(r.fields[name], serial.fields[name]), name
    assert [d.step for d in r.diagnostics] == [5, 10]
    assert r.trace_summary.n_ranks == 4
    assert all(bd.steps == 10 for bd in r.trace_summary.ranks)
    assert all(bd.bytes_sent > 0 for bd in r.trace_summary.ranks)
    data = json.loads(r.trace_path.read_text())
    assert data["otherData"]["ranks"] == 4
