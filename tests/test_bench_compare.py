"""The bench regression gate (tools/bench_compare.py)."""

import importlib.util
import json
from pathlib import Path

import pytest

TOOL = Path(__file__).resolve().parent.parent / "tools" / "bench_compare.py"

spec = importlib.util.spec_from_file_location("bench_compare", TOOL)
bench_compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(bench_compare)


BASE = {
    "host": {"platform": "baseline-box", "cpu_count": 64, "numba": "0.59"},
    "steps": 40,
    "seconds": {"bsp": 0.40, "graph": 0.26},
    "speedup": 1.55,
    "speedups": {"lb2d_numba_vs_serial_numpy": 3.0},
    "graph_bitwise": True,
    "passed": True,
}


def _write(tmp_path, name, payload, sub=""):
    d = tmp_path / sub if sub else tmp_path
    d.mkdir(parents=True, exist_ok=True)
    p = d / name
    p.write_text(json.dumps(payload))
    return p


def _run(tmp_path, current) -> int:
    _write(tmp_path, "BENCH_x.json", BASE, sub="baselines")
    cur = _write(tmp_path, "BENCH_x.json", current)
    return bench_compare.main(
        [str(cur), "--baselines", str(tmp_path / "baselines")]
    )


def test_identical_passes(tmp_path):
    assert _run(tmp_path, dict(BASE)) == 0


def test_25_percent_speedup_drop_fails(tmp_path):
    bad = json.loads(json.dumps(BASE))
    bad["speedup"] = BASE["speedup"] * 0.75
    assert _run(tmp_path, bad) == 1


def test_within_tolerance_passes(tmp_path):
    ok = json.loads(json.dumps(BASE))
    ok["speedup"] = BASE["speedup"] * 0.85          # -15% < 20% gate
    ok["speedups"]["lb2d_numba_vs_serial_numpy"] = 2.5
    assert _run(tmp_path, ok) == 0


def test_nested_speedup_table_gated(tmp_path):
    bad = json.loads(json.dumps(BASE))
    bad["speedups"]["lb2d_numba_vs_serial_numpy"] = 1.0
    assert _run(tmp_path, bad) == 1


def test_boolean_regression_fails(tmp_path):
    bad = json.loads(json.dumps(BASE))
    bad["graph_bitwise"] = False
    assert _run(tmp_path, bad) == 1


def test_timings_are_not_gated(tmp_path):
    """A 10x slower host changes raw seconds — that must not fail."""
    slow = json.loads(json.dumps(BASE))
    slow["seconds"] = {"bsp": 4.0, "graph": 2.6}
    assert _run(tmp_path, slow) == 0


def test_host_metadata_ignored(tmp_path):
    other = json.loads(json.dumps(BASE))
    other["host"] = {"platform": "ci-runner", "cpu_count": 2,
                     "numba": None}
    assert _run(tmp_path, other) == 0


def test_missing_gated_metric_fails(tmp_path):
    bad = json.loads(json.dumps(BASE))
    del bad["speedup"]
    assert _run(tmp_path, bad) == 1


def test_missing_baseline_skips(tmp_path, capsys):
    cur = _write(tmp_path, "BENCH_new.json", BASE)
    rc = bench_compare.main(
        [str(cur), "--baselines", str(tmp_path / "baselines")]
    )
    assert rc == 0
    assert "no baseline" in capsys.readouterr().out


def test_update_baselines(tmp_path):
    cur = _write(tmp_path, "BENCH_x.json", BASE)
    rc = bench_compare.main(
        [str(cur), "--baselines", str(tmp_path / "baselines"),
         "--update-baselines"]
    )
    assert rc == 0
    saved = json.loads((tmp_path / "baselines" / "BENCH_x.json").read_text())
    assert saved == BASE
    # and the freshly updated baseline compares clean
    assert _run(tmp_path, dict(BASE)) == 0


def test_tolerance_flag(tmp_path):
    bad = json.loads(json.dumps(BASE))
    bad["speedup"] = BASE["speedup"] * 0.75
    _write(tmp_path, "BENCH_x.json", BASE, sub="baselines")
    cur = _write(tmp_path, "BENCH_x.json", bad)
    args = [str(cur), "--baselines", str(tmp_path / "baselines")]
    assert bench_compare.main(args + ["--tolerance", "0.30"]) == 0
    assert bench_compare.main(args + ["--tolerance", "0.10"]) == 1


def test_real_bench_files_self_compare(tmp_path):
    """Every committed baseline compares clean against itself."""
    base_dir = bench_compare.default_baseline_dir()
    files = sorted(base_dir.glob("BENCH_*.json"))
    assert files, "no committed baselines found"
    for f in files:
        cur = _write(tmp_path, f.name, json.loads(f.read_text()))
        assert bench_compare.main(
            [str(cur), "--baselines", str(base_dir)]
        ) == 0, f.name
