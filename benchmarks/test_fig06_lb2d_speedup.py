"""Figure 6: parallel speedup of 2D lattice Boltzmann simulations.

Same sweep as fig. 5, reported as speedup S = T_1 / T_p.  Shape claims:
speedup approaches the processor count as the grain grows; at the
largest measured grain the 20-processor decomposition achieves the
paper's headline "typical simulations achieve 80% parallel efficiency
using 20 workstations" (S >~ 15).
"""

from repro.harness import (
    DEFAULT_2D_DECOMPS,
    DEFAULT_2D_SIDES,
    format_table,
    sweep_2d_grain,
)

from conftest import run_once


def test_fig06(benchmark, record_figure):
    data = run_once(
        benchmark,
        lambda: sweep_2d_grain(
            "lb", DEFAULT_2D_DECOMPS, DEFAULT_2D_SIDES, steps=30
        ),
    )
    rows = [
        [f"{b[0]}x{b[1]}", pt.side, pt.processors, f"{pt.speedup:.2f}"]
        for b, pts in data.items()
        for pt in pts
    ]
    record_figure(
        "fig06_lb2d_speedup",
        format_table(
            ["decomp", "side", "P", "speedup"],
            rows,
            title="Fig. 6 — LB 2D speedup vs subregion side",
        ),
    )

    for blocks, pts in data.items():
        p = pts[0].processors
        sp = [pt.speedup for pt in pts]
        # monotone in grain and bounded by P
        assert all(b >= a - 1e-9 for a, b in zip(sp, sp[1:])), blocks
        assert sp[-1] <= p + 1e-6, blocks

    # the headline: ~80% of 20 workstations at production grain
    best_20 = data[(5, 4)][-1]
    assert best_20.speedup > 0.72 * 20

    # more processors must actually buy more speed at large grain
    assert (
        data[(5, 4)][-1].speedup
        > data[(4, 4)][-1].speedup
        > data[(3, 3)][-1].speedup
        > data[(2, 2)][-1].speedup
    )
