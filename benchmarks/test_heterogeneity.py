"""§7's normalization experiment: replacing 715s with slower 710s.

"We have tested that the speedup achieved by sixteen workstations,
which are all 715 models, does not change if one or two workstations
are replaced with 710 models."

Under the BSP regime a synchronized computation is gated by its slowest
member, so replacing two 715s (relative speed 1.0) with 710s (0.84)
should cost at most the 710 deficit (~16 %) and, with communication
slack absorbing part of it, typically less.  The paper's "does not
change" sits inside its own ±4-10 % error bars; this benchmark measures
the replacement effect in both sync regimes and bounds it by the
deficit — recording honestly where the reproduction's model is more
pessimistic than the paper's measurement.
"""

from repro.cluster import ClusterSimulation, SimHost
from repro.harness import format_table

from conftest import run_once


def _hosts(n_710: int):
    hosts = [SimHost(f"h{i:02d}", "715/50") for i in range(16)]
    for i in range(n_710):
        hosts[15 - i] = SimHost(f"h{15 - i:02d}", "710")
    return hosts


def _speedup(n_710: int, sync_mode: str) -> float:
    sim = ClusterSimulation(
        "lb", 2, (16, 1), 150, hosts=_hosts(n_710), sync_mode=sync_mode
    )
    return sim.run(steps=25).speedup


def test_heterogeneity(benchmark, record_figure):
    def build():
        return {
            (mode, n): _speedup(n, mode)
            for mode in ("bsp", "loose")
            for n in (0, 1, 2)
        }

    res = run_once(benchmark, build)
    rows = [
        [mode, n, f"{res[(mode, n)]:.2f}",
         f"{res[(mode, n)] / res[(mode, 0)]:.3f}"]
        for mode in ("bsp", "loose")
        for n in (0, 1, 2)
    ]
    record_figure(
        "heterogeneity",
        format_table(
            ["sync", "710s in pool", "speedup", "vs all-715"],
            rows,
            title="§7 — replacing 715/50 workstations with 710 models "
                  "(16 workstations, 150^2 per processor)",
        ),
    )

    for mode in ("bsp", "loose"):
        base = res[(mode, 0)]
        one = res[(mode, 1)]
        two = res[(mode, 2)]
        # slower members never help (up to scheduling wiggle: once one
        # slow host gates the barrier, a second changes almost nothing)
        assert one <= base + 1e-9
        assert two <= one + 0.02 * base
        # and cost at most the 710 deficit; the paper measured "no
        # change" within its error bars, i.e. inside this envelope
        assert two >= base * 0.84 * 0.98, mode
        assert one >= base * 0.84 * 0.98, mode
    # the shared bus absorbs part of the deficit (communication time is
    # host-independent), so BSP is less sensitive than pure pipelining
    assert (res[("bsp", 2)] / res[("bsp", 0)]
            >= res[("loose", 2)] / res[("loose", 0)])
