"""Figure 12: the theoretical efficiency model in 2D (eq. 20).

Efficiency vs N^(1/2) for (P, m) = (4, 2), (9, 3), (16, 4), (20, 4)
with U_calc / V_com = 2/3 — the paper's exact fitted curves.  Since
this is a closed form, the benchmark asserts point values, limits and
the comparison against the simulated fig. 5 measurements.
"""

import numpy as np
import pytest

from repro.harness import format_series, model_fig12, sweep_2d_grain

from conftest import run_once

SIDES = np.array([25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 250.0, 300.0])


def test_fig12(benchmark, record_figure):
    curves = run_once(benchmark, lambda: model_fig12(SIDES))
    text = "\n".join(
        format_series(f"P={p} m={m:g}", SIDES.tolist(),
                      np.asarray(f).tolist())
        for (p, m), f in sorted(curves.items())
    )
    record_figure(
        "fig12_model_2d",
        "Fig. 12 — eq. 20 model, U_calc/V_com = 2/3\n" + text,
    )

    # exact closed-form spot checks
    f = curves[(20, 4.0)]
    assert f[3] == pytest.approx(1 / (1 + (1 / 100) * 19 * 4 * (2 / 3)))
    f4 = curves[(4, 2.0)]
    assert f4[0] == pytest.approx(1 / (1 + (1 / 25) * 3 * 2 * (2 / 3)))

    # ordering and limits
    for (p, m), fc in curves.items():
        fc = np.asarray(fc)
        assert np.all(np.diff(fc) > 0)
        assert np.all((0 < fc) & (fc < 1))
    assert np.all(
        np.asarray(curves[(4, 2.0)]) > np.asarray(curves[(20, 4.0)])
    )

    # model vs the fig. 5 "measurements": good agreement above 100^2,
    # over-prediction below (the paper's own observation)
    sim = sweep_2d_grain("lb", ((5, 4),), tuple(int(s) for s in SIDES),
                         steps=25)[(5, 4)]
    model = np.asarray(curves[(20, 4.0)])
    for i, side in enumerate(SIDES):
        if side >= 150:
            assert sim[i].efficiency == pytest.approx(model[i], abs=0.12)
        if side <= 50:
            assert sim[i].efficiency < model[i] - 0.1
