"""Shared infrastructure for the per-figure benchmark harness.

Every benchmark regenerates one table or figure of the paper and

* prints the rows/series the figure reports (visible with ``-s``),
* writes the same text to ``benchmarks/results/<name>.txt``,
* asserts the *shape* claims of the paper (who wins, by roughly what
  factor, where the crossovers fall) — absolute 1994 numbers are not
  asserted, as the substrate is a calibrated simulator.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def record_figure():
    """Write a figure's textual twin and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n")

    return _record


@pytest.fixture
def record_svg():
    """Render a figure's curves as an SVG file next to its text twin."""
    from repro.viz import svg_plot

    def _record(name: str, series, **kw) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        svg_plot(series, RESULTS_DIR / f"{name}.svg", **kw)

    return _record


def run_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark.

    The interesting output of these benchmarks is the figure data, not
    the wall time of generating it; one round keeps the harness fast
    while still appearing in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
