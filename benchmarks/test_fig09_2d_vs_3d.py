"""Figure 9: the Ethernet performs well for 2D but poorly for 3D.

A scaled problem — fixed subregion per processor (120^2 in 2D, 25^3 in
3D, both ~14,500 fluid nodes) — decomposed as (P x 1) / (P x 1 x 1),
with P sweeping 2..20.  The central claim of the paper: 2D efficiency
remains high as processors are added while 3D efficiency collapses,
because 3D pushes 5/3 the data per node through the shared bus at half
the compute speed, and the bus traffic grows with P (eq. 19).

The eq. 20/21 model (fig. 13) is printed alongside; the simulated
points track the model curves.
"""

import numpy as np
import pytest

from repro.core import EfficiencyModel
from repro.harness import format_table, sweep_processors

from conftest import run_once

PROCS = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)


def test_fig09(benchmark, record_figure, record_svg):
    data = run_once(
        benchmark, lambda: sweep_processors(processors=PROCS, steps=30)
    )
    model = EfficiencyModel()
    record_svg(
        "fig09_2d_vs_3d",
        {
            "2D sim": (list(PROCS),
                       [p.efficiency for p in data["2d"]]),
            "3D sim": (list(PROCS),
                       [p.efficiency for p in data["3d"]]),
            "2D eq.20": (list(PROCS),
                         [float(model.efficiency(120.0**2, 2, p, 2))
                          for p in PROCS]),
            "3D eq.21": (list(PROCS),
                         [float(model.efficiency(25.0**3, 2, p, 3))
                          for p in PROCS]),
        },
        title="Fig. 9 - efficiency vs processors (2D vs 3D)",
        xlabel="P",
        ylabel="efficiency",
        ylim=(0.0, 1.0),
    )
    rows = []
    for i, p in enumerate(PROCS):
        pred2 = float(model.efficiency(120.0**2, 2, p, 2))
        pred3 = float(model.efficiency(25.0**3, 2, p, 3))
        rows.append(
            [
                p,
                f"{data['2d'][i].efficiency:.3f}",
                f"{pred2:.3f}",
                f"{data['3d'][i].efficiency:.3f}",
                f"{pred3:.3f}",
                data["3d"][i].network_errors,
            ]
        )
    record_figure(
        "fig09_2d_vs_3d",
        format_table(
            ["P", "f 2D (sim)", "f 2D (eq.20)", "f 3D (sim)",
             "f 3D (eq.21)", "3D net errors"],
            rows,
            title="Fig. 9 — efficiency vs processors: 2D (120^2/proc) "
                  "vs 3D (25^3/proc)",
        ),
    )

    e2 = [pt.efficiency for pt in data["2d"]]
    e3 = [pt.efficiency for pt in data["3d"]]

    # both decline with P; 3D declines much faster
    assert all(b <= a + 1e-9 for a, b in zip(e2, e2[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(e3, e3[1:]))
    drop2 = e2[0] - e2[-1]
    drop3 = e3[0] - e3[-1]
    assert drop3 > 1.5 * drop2

    # 2D remains serviceable at 20 processors; 3D does not
    assert e2[-1] > 0.6
    assert e3[-1] < 0.55
    # separation at the big end (the fig. 9 gap)
    assert e2[-1] - e3[-1] > 0.15

    # the simulated points track the model curves
    for i, p in enumerate(PROCS):
        assert e2[i] == pytest.approx(
            float(model.efficiency(120.0**2, 2, p, 2)), abs=0.18
        )
        assert e3[i] == pytest.approx(
            float(model.efficiency(25.0**3, 2, p, 3)), abs=0.18
        )
