"""Figures 1-2: flue-pipe simulations.

The paper's figures are vorticity snapshots of 800x500 (fig. 1, 5x4
decomposition, 20 workstations) and 1107x700 (fig. 2, 6x4 decomposition
with 9 inactive subregions, 15 workstations) runs.  At benchmark scale
we run the same geometries at reduced resolution, decomposed exactly as
the paper decomposes them, and assert the figures' content:

* the jet enters, impinges the edge, and sheds vorticity of both signs
  (the equi-vorticity contour pattern of fig. 1);
* the computation is bit-identical to the serial run (the decomposition
  dashed lines in fig. 1 are invisible to the physics);
* fig. 2's decomposition leaves whole subregions inactive, so fewer
  workstations than subregions are employed, with the paper's
  node-accounting (only the active fraction of the grid is simulated);
* the resonant pipe responds: the mouth probe records an acoustic
  signal once the jet is established.
"""

import numpy as np
import pytest

from repro.core import Decomposition, Simulation
from repro.fluids import FluidParams, LBMethod, flue_pipe, vorticity_2d
from repro.harness import format_table

from conftest import run_once

SHAPE = (200, 125)  # 800x500 / 4
STEPS = 250


def _run_flue(variant, blocks, steps=STEPS):
    setup = flue_pipe(SHAPE, jet_speed=0.08, variant=variant,
                      ramp_steps=60)
    params = FluidParams.lattice(2, nu=0.02, filter_eps=0.02)
    method = LBMethod(params, 2, inlets=[setup.inlet],
                      outlets=[setup.outlet])
    decomp = Decomposition(SHAPE, blocks, solid=setup.solid)
    fields = {
        "rho": np.full(SHAPE, 1.0),
        "u": np.zeros(SHAPE),
        "v": np.zeros(SHAPE),
    }
    sim = Simulation(method, decomp, fields, setup.solid)
    probe = []
    for _ in range(steps // 10):
        sim.step(10)
        rho = sim.global_field("rho")
        pb = setup.mouth_probe
        probe.append(
            float(rho[pb.lo[0]:pb.hi[0], pb.lo[1]:pb.hi[1]].mean())
        )
    return sim, setup, decomp, probe


def test_fig01_basic_flue_pipe(benchmark, record_figure):
    sim, setup, decomp, probe = run_once(
        benchmark, lambda: _run_flue("basic", (5, 4))
    )
    u = sim.global_field("u")
    v = sim.global_field("v")
    w = vorticity_2d(u, v)
    w[setup.solid] = 0.0

    rows = [
        ["grid", f"{SHAPE[0]}x{SHAPE[1]}"],
        ["decomposition", "5x4 = 20 subregions, all active"],
        ["steps", STEPS],
        ["max |vorticity|", f"{np.abs(w).max():.4f}"],
        ["positive vortex cells", int((w > 0.01).sum())],
        ["negative vortex cells", int((w < -0.01).sum())],
        ["peak jet speed", f"{u.max():.4f}"],
        ["mouth probe swing", f"{max(probe) - min(probe):.2e}"],
    ]
    record_figure(
        "fig01_flue_pipe",
        format_table(["quantity", "value"], rows,
                     title="Fig. 1 — flue pipe, (5x4) decomposition"),
    )

    assert np.isfinite(u).all() and np.isfinite(v).all()
    # the jet is flowing and sheds vorticity of both signs
    assert u.max() > 0.05
    assert (w > 0.01).sum() > 20 and (w < -0.01).sum() > 20
    # the pipe mouth sees an acoustic response
    assert max(probe) - min(probe) > 1e-5
    assert decomp.n_active == 20


def test_fig01_decomposition_invisible(benchmark):
    """The (5x4) run equals the serial run bit for bit."""

    def build():
        par, setup, _, _ = _run_flue("basic", (5, 4), steps=60)
        ser, _, _, _ = _run_flue("basic", (1, 1), steps=60)
        return par, ser

    par, ser = run_once(benchmark, build)
    for name in ("rho", "u", "v", "f"):
        assert np.array_equal(
            par.global_field(name), ser.global_field(name)
        ), name


def test_fig02_channel_variant_inactive_subregions(benchmark,
                                                   record_figure):
    sim, setup, decomp, probe = run_once(
        benchmark, lambda: _run_flue("channel", (6, 4), steps=120)
    )
    total = decomp.n_blocks
    active = decomp.n_active
    rows = [
        ["decomposition", f"6x4 = {total} subregions"],
        ["workstations employed", active],
        ["inactive (all-wall) subregions", total - active],
        ["active node fraction",
         f"{decomp.n_active_nodes / (SHAPE[0] * SHAPE[1]):.2f}"],
        ["peak jet speed", f"{sim.global_field('u').max():.4f}"],
    ]
    record_figure(
        "fig02_flue_pipe_channel",
        format_table(["quantity", "value"], rows,
                     title="Fig. 2 — flue pipe with channel, (6x4) "
                           "decomposition, inactive subregions skipped"),
    )

    # the paper's run uses 15 of 24; our scaled geometry must at least
    # leave several subregions inactive
    assert total == 24
    assert active < total
    assert total - active >= 2
    # and the active fraction of nodes is what gets simulated
    assert decomp.n_active_nodes < SHAPE[0] * SHAPE[1]
    assert np.isfinite(sim.global_field("u")).all()
