"""Appendix A: worst-case un-synchronization between processes.

Eq. 22 (full stencil): dN = max(J, K) - 1.
Eq. 23 (star stencil): dN = (J - 1) + (K - 1).

Beyond the closed forms, the *attainability* of the star bound is
demonstrated dynamically: in a loose-sync simulated run where the first
process of a chain is slowed (its host is busy), distant processes run
ahead by exactly the dependency slack — the mechanism that makes
first-come-first-served communication (App. C) pay off.
"""

from repro.core import full_stencil, max_unsync_steps, star_stencil
from repro.cluster import ClusterSimulation, LoadTrace, paper_sim_cluster
from repro.harness import format_table

from conftest import run_once

DECOMPS = ((2, 2), (4, 4), (5, 4), (6, 4), (8, 1))


def test_unsync_bounds_table(benchmark, record_figure):
    def build():
        return [
            [
                f"{j}x{k}",
                max_unsync_steps((j, k), full_stencil(2)),
                max_unsync_steps((j, k), star_stencil(2)),
            ]
            for j, k in DECOMPS
        ]

    rows = run_once(benchmark, build)
    record_figure(
        "unsync_bounds",
        format_table(
            ["decomp", "dN full (eq.22)", "dN star (eq.23)"],
            rows,
            title="App. A — worst-case step spread between processes",
        ),
    )
    by_decomp = {r[0]: r for r in rows}
    assert by_decomp["6x4"][1] == 5  # max(6,4) - 1
    assert by_decomp["6x4"][2] == 8  # 5 + 3
    assert by_decomp["8x1"][1] == 7 and by_decomp["8x1"][2] == 7


def test_unsync_attained_in_loose_run(benchmark, record_figure):
    """A slowed end-of-chain process lets the far end run ahead, up to
    the App. A dependency bound."""

    def build():
        traces = {"hp715-00": LoadTrace.busy_from(0.0, load=3.0)}
        sim = ClusterSimulation(
            "lb", 2, (6, 1), 100,
            hosts=paper_sim_cluster(traces), sync_mode="loose",
        )
        spreads = []

        orig = sim._step_done

        def spy(proc, t):
            orig(proc, t)
            steps = [p.step for p in sim.procs]
            spreads.append(max(steps) - min(steps))

        sim._step_done = spy
        sim.run(steps=40)
        return max(spreads)

    max_spread = run_once(benchmark, build)
    bound = max_unsync_steps((6, 1), star_stencil(2))
    record_figure(
        "unsync_attained",
        format_table(
            ["quantity", "value"],
            [
                ["decomposition", "6x1 chain, rank 0 on a busy host"],
                ["max observed step spread", max_spread],
                ["App. A bound (eq. 23)", bound],
            ],
            title="App. A — dynamic un-synchronization in a loose run",
        ),
    )
    # the spread is substantial (FCFS lets fast processes run ahead) ...
    assert max_spread >= 2
    # ... but can never exceed the dependency bound
    assert max_spread <= bound
