"""§7 validation claim: both methods converge quadratically in space to
the exact Hagen-Poiseuille solution.

FD with walls on solid nodes is *exact* for the parabolic profile
(centered differences represent quadratics exactly), so its error sits
at round-off; LB with halfway bounce-back walls shows clean second-order
convergence.  The benchmark prints the error table and fits the
convergence order.
"""

import numpy as np
import pytest

from repro.fluids import FDMethod, LBMethod, poiseuille_profile
from repro.harness import format_table
from tests.conftest import channel_sim

from conftest import run_once


def _steady_error(method_cls, ny, nu=0.1, g=1e-6):
    sim = channel_sim(method_cls, shape=(8, ny), nu=nu, g=g)
    prev = None
    for _ in range(400):
        sim.step(150)
        u = sim.global_field("u")[4]
        if prev is not None and np.abs(u - prev).max() <= 1e-13 * max(
            float(u.max()), 1e-30
        ):
            break
        prev = u.copy()
    if method_cls is LBMethod:
        y = np.arange(ny, dtype=float) - 0.5
        h = ny - 2.0
    else:
        y = np.arange(ny, dtype=float)
        h = ny - 1.0
    exact = poiseuille_profile(y, h, g, nu)
    fl = slice(1, ny - 1)
    return float(np.abs(u[fl] - exact[fl]).max() / exact.max())


def test_poiseuille_convergence(benchmark, record_figure):
    widths = (10, 14, 18, 26)

    def build():
        return {
            "lb": [_steady_error(LBMethod, ny) for ny in widths],
            "fd": [_steady_error(FDMethod, ny) for ny in widths],
        }

    errors = run_once(benchmark, build)
    rows = [
        [ny, f"{errors['lb'][i]:.3e}", f"{errors['fd'][i]:.3e}"]
        for i, ny in enumerate(widths)
    ]
    record_figure(
        "poiseuille_convergence",
        format_table(
            ["grid width", "LB rel err", "FD rel err"],
            rows,
            title="Hagen-Poiseuille: max relative error vs resolution "
                  "(§7 quadratic-convergence claim)",
        ),
    )

    # LB: fit the order on channel width H = ny - 2
    h = np.array([ny - 2.0 for ny in widths])
    e = np.array(errors["lb"])
    order = -np.polyfit(np.log(h), np.log(e), 1)[0]
    assert order > 1.6, f"LB order {order:.2f} not quadratic"

    # FD: exact representation — errors at round-off level
    assert max(errors["fd"]) < 1e-10

    # both methods produce comparable (excellent) accuracy at the
    # finest resolution (§7: 'the two methods produce comparable
    # results for the same resolution')
    assert errors["lb"][-1] < 1e-2
