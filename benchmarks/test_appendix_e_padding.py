"""Appendix E: the 4096-byte array-length performance bug.

On the HP9000/700 the paper saw a 2x slowdown when array lengths were a
near multiple of the 4096-byte page size (cache prefetch pathology),
fixed by lengthening the arrays by 200-300 bytes.  Modern caches are
set-associative enough that the cliff usually vanishes, so this
benchmark is *qualitative*: it measures a strided row-sum at array rows
exactly at page-multiples vs padded rows, reports the ratio, and only
asserts that the padded variant is never substantially slower — i.e.
that the paper's mitigation is still safe to apply today.
"""

import time

import numpy as np

from repro.harness import format_table

from conftest import run_once

PAGE = 4096  # bytes; 512 float64 per row
ROWS = 256
REPEATS = 30


def _column_sum_time(row_floats: int) -> float:
    """Time a column-wise reduction over row-major storage: the access
    pattern whose stride aliases the page/cache geometry."""
    a = np.ones((ROWS, row_floats))
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        a[:, ::64].sum()
        best = min(best, time.perf_counter() - t0)
    return best


def test_appendix_e_padding(benchmark, record_figure):
    def build():
        out = []
        for mult in (1, 2, 4):
            aligned = mult * PAGE // 8
            padded = aligned + 40  # the paper's 200-300 bytes ~ 40 doubles
            t_aligned = _column_sum_time(aligned)
            t_padded = _column_sum_time(padded)
            out.append((mult, t_aligned, t_padded))
        return out

    data = run_once(benchmark, build)
    rows = [
        [f"{m} page(s)", f"{ta * 1e6:.1f}", f"{tp * 1e6:.1f}",
         f"{ta / tp:.2f}"]
        for m, ta, tp in data
    ]
    record_figure(
        "appendix_e_padding",
        format_table(
            ["row length", "aligned (us)", "padded (us)",
             "aligned/padded"],
            rows,
            title="App. E — page-aligned vs padded array rows "
                  "(qualitative on modern hardware)",
        ),
    )
    # The mitigation must never hurt much: padded rows process at most
    # modestly slower than aligned ones despite the extra bytes.
    for m, ta, tp in data:
        assert tp < 2.0 * ta + 1e-4, m
