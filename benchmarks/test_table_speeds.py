"""§7 table of workstation speeds.

The paper defines a workstation's speed as fluid nodes integrated per
second (padded areas excluded) and tabulates it for LB/FD x 2D/3D,
normalized to 39132 nodes/s (LB 2D on the HP 715/50).

Two tables are produced:

* the *paper's* table, reproduced from the calibration constants the
  cluster simulator runs on (this is what figs. 5-11 are built from);
* the *measured* table on this machine's NumPy kernels, using the same
  protocol (average over 20 steps, best of 2 repeats, grids spanning
  the paper's 100^2..300^2 / 10^3..44^3 ranges scaled to test size).

The paper's key *relative* claims are asserted on the measured numbers:
FD integrates more nodes per second than LB at equal dimensionality,
and 3D is slower per node than 2D for LB (more populations to move).
"""

import numpy as np
import pytest

from repro.cluster import RELATIVE_SPEED, U_REF_NODES_PER_S, node_speed
from repro.fluids import FDMethod, FluidParams, LBMethod
from repro.core import Decomposition, Simulation
from repro.harness import format_table, measure_node_speed

from conftest import run_once


def _kernel_speed(method_cls, ndim, side):
    shape = (side,) * ndim
    params = FluidParams.lattice(ndim, nu=0.05)
    fields = {"rho": np.ones(shape)}
    for n in ("u", "v", "w")[:ndim]:
        fields[n] = np.zeros(shape)
    d = Decomposition(shape, (1,) * ndim, periodic=(True,) * ndim)
    sim = Simulation(method_cls(params, ndim), d, fields)
    return measure_node_speed(sim, n_nodes=side**ndim, steps=10, repeats=2)


def test_paper_speed_table(benchmark, record_figure):
    def build():
        rows = []
        for (method, ndim), models in sorted(RELATIVE_SPEED.items()):
            rows.append(
                [
                    f"{method.upper()} {ndim}D",
                    f"{models['715/50']:.2f}",
                    f"{models['710']:.2f}",
                    f"{models['720']:.2f}",
                    f"{node_speed(method, ndim):.0f}",
                ]
            )
        return rows

    rows = run_once(benchmark, build)
    text = format_table(
        ["method", "715/50", "710", "720", "nodes/s (715/50)"],
        rows,
        title=f"§7 speed table (1.0 = {U_REF_NODES_PER_S:.0f} nodes/s)",
    )
    record_figure("table_speeds_paper", text)
    assert node_speed("lb", 2) == 39132.0
    # FD 2D is ~1.24x LB 2D; LB 3D is ~0.51x LB 2D (paper's table)
    assert node_speed("fd", 2) / node_speed("lb", 2) == pytest.approx(1.24)
    assert node_speed("lb", 3) / node_speed("lb", 2) == pytest.approx(0.51)


def test_measured_speed_table(benchmark, record_figure):
    """Same measurement on this machine's vectorized kernels."""

    def measure():
        out = {}
        for method_cls, name in ((LBMethod, "lb"), (FDMethod, "fd")):
            for ndim, sides in ((2, (64, 128)), (3, (16, 24))):
                speeds = [
                    _kernel_speed(method_cls, ndim, s) for s in sides
                ]
                out[(name, ndim)] = float(np.mean(speeds))
        return out

    speeds = run_once(benchmark, measure)
    ref = speeds[("lb", 2)]
    rows = [
        [f"{m.upper()} {d}D", f"{speeds[(m, d)]:.0f}",
         f"{speeds[(m, d)] / ref:.2f}"]
        for (m, d) in sorted(speeds)
    ]
    text = format_table(
        ["method", "nodes/s", "relative"],
        rows,
        title="measured on this machine (NumPy kernels, §7 protocol)",
    )
    record_figure("table_speeds_measured", text)
    # Shape claims that should survive any substrate:
    assert speeds[("fd", 2)] > speeds[("lb", 2)]  # FD cheaper per node
    assert speeds[("lb", 3)] < speeds[("lb", 2)]  # 3D LB slower per node
