"""Figure 5: parallel efficiency of 2D lattice Boltzmann simulations.

Efficiency vs subregion side (sqrt of grain N) for the paper's four
decompositions — (2x2) triangles, (3x3) crosses, (4x4) squares, (5x4)
circles — on the simulated 25-workstation cluster.

Shape claims asserted:
* efficiency rises monotonically with grain for every decomposition;
* good performance (f >~ 0.7) once the subregion exceeds ~100^2 nodes;
* fewer processors => higher efficiency at fixed grain;
* the eq. 20 model (fig. 12) matches the measurements at large grain
  and over-predicts below 100^2 (the small-message overhead the model
  omits, as the paper notes).
"""

import pytest

from repro.core import EfficiencyModel, paper_m_table
from repro.harness import (
    DEFAULT_2D_DECOMPS,
    DEFAULT_2D_SIDES,
    format_table,
    sweep_2d_grain,
)

from conftest import run_once


def test_fig05(benchmark, record_figure, record_svg):
    data = run_once(
        benchmark,
        lambda: sweep_2d_grain(
            "lb", DEFAULT_2D_DECOMPS, DEFAULT_2D_SIDES, steps=30
        ),
    )
    model = EfficiencyModel()
    m_table = paper_m_table()
    record_svg(
        "fig05_lb2d_efficiency",
        {
            f"{b[0]}x{b[1]}": (
                [p.side for p in pts], [p.efficiency for p in pts]
            )
            for b, pts in data.items()
        },
        title="Fig. 5 - LB 2D efficiency vs subregion side",
        xlabel="sqrt(N)",
        ylabel="efficiency",
        ylim=(0.0, 1.0),
    )

    rows = []
    for blocks, pts in data.items():
        m = m_table[blocks]
        p = pts[0].processors
        for pt in pts:
            pred = float(model.efficiency(pt.nodes, m, p, 2))
            rows.append(
                [f"{blocks[0]}x{blocks[1]}", pt.side, f"{pt.efficiency:.3f}",
                 f"{pred:.3f}"]
            )
    record_figure(
        "fig05_lb2d_efficiency",
        format_table(
            ["decomp", "side", "f (sim)", "f (eq.20)"],
            rows,
            title="Fig. 5 — LB 2D efficiency vs subregion side",
        ),
    )

    for blocks, pts in data.items():
        effs = [p.efficiency for p in pts]
        # monotone in grain
        assert all(b >= a - 1e-9 for a, b in zip(effs, effs[1:])), blocks
        # high efficiency at large grain (paper: ~80% typical)
        assert effs[-1] > 0.7, blocks
        # a clear rolloff towards tiny grains
        assert effs[0] < effs[-1] - 0.2, blocks

    # good performance threshold near 100^2 (paper §7)
    at_100 = {b: [p for p in pts if p.side == 100][0].efficiency
              for b, pts in data.items()}
    assert at_100[(2, 2)] > 0.8
    assert at_100[(5, 4)] > 0.45

    # fewer processors => higher efficiency at fixed grain
    assert at_100[(2, 2)] > at_100[(3, 3)] > at_100[(5, 4)]

    # model vs measurement: agreement at 300^2, over-prediction at 25^2
    for blocks, pts in data.items():
        m, p = m_table[blocks], pts[0].processors
        big = pts[-1]
        pred_big = float(model.efficiency(big.nodes, m, p, 2))
        assert big.efficiency == pytest.approx(pred_big, abs=0.15)
        small = pts[0]
        pred_small = float(model.efficiency(small.nodes, m, p, 2))
        assert small.efficiency < pred_small
