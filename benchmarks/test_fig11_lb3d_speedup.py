"""Figure 11: 3D lattice Boltzmann speedup vs total problem size.

The paper's damning 3D result: "the speedup does not improve when finer
decompositions are employed because the network is the bottleneck of
the computation."  We sweep the total problem size for each 3D
decomposition and assert the plateau: at equal total size, throwing
more processors at the problem buys little or nothing once the shared
bus saturates.
"""

import numpy as np

from repro.cluster import ClusterSimulation
from repro.harness import format_table

from conftest import run_once

DECOMPS = ((2, 2, 2), (4, 2, 2), (5, 2, 2))
TOTAL_NODES = (32_000, 64_000, 125_000, 216_000, 343_000, 512_000)


def _speedup_at_total(blocks, total):
    """Speedup for a given decomposition at a given total problem size."""
    p = int(np.prod(blocks))
    side = max(int(round((total / p) ** (1.0 / 3.0))), 4)
    sim = ClusterSimulation("lb", 3, blocks, side)
    res = sim.run(steps=25)
    return res, side


def test_fig11(benchmark, record_figure):
    def build():
        out = {}
        for blocks in DECOMPS:
            pts = []
            for total in TOTAL_NODES:
                res, side = _speedup_at_total(blocks, total)
                pts.append((total, side, res.speedup, res.efficiency))
            out[blocks] = pts
        return out

    data = run_once(benchmark, build)
    rows = [
        ["x".join(map(str, b)), int(np.prod(b)), total, side,
         f"{s:.2f}", f"{f:.3f}"]
        for b, pts in data.items()
        for total, side, s, f in pts
    ]
    record_figure(
        "fig11_lb3d_speedup",
        format_table(
            ["decomp", "P", "total nodes", "side", "speedup", "f"],
            rows,
            title="Fig. 11 — LB 3D speedup vs total problem size",
        ),
    )

    # speedup grows with problem size for every decomposition
    for blocks, pts in data.items():
        sp = [s for _, _, s, _ in pts]
        assert all(b >= a - 1e-9 for a, b in zip(sp, sp[1:])), blocks

    # the plateau: at the largest problem, 20 processors gain little
    # over 8 — nothing like the 2.5x a compute-bound problem would give
    s8 = data[(2, 2, 2)][-1][2]
    s20 = data[(5, 2, 2)][-1][2]
    assert s20 < 1.6 * s8
    # and the finest decomposition is badly inefficient
    assert data[(5, 2, 2)][-1][3] < 0.6
