"""Figure 7: parallel efficiency of 2D finite-difference simulations.

Same sweep as fig. 5 with the FD method.  The §7 observation asserted
here: "the efficiency decreases more rapidly for FD than LB as the
subregion per processor decreases", for two calibrated reasons — FD
computes faster per step (T_calc smaller) and sends two messages per
step instead of one (T_com larger at small messages, eq. 6).
"""

from repro.harness import (
    DEFAULT_2D_DECOMPS,
    DEFAULT_2D_SIDES,
    format_table,
    sweep_2d_grain,
)

from conftest import run_once


def test_fig07(benchmark, record_figure):
    def build():
        return (
            sweep_2d_grain("fd", DEFAULT_2D_DECOMPS, DEFAULT_2D_SIDES,
                           steps=30),
            sweep_2d_grain("lb", DEFAULT_2D_DECOMPS, DEFAULT_2D_SIDES,
                           steps=30),
        )

    fd, lb = run_once(benchmark, build)
    rows = [
        [f"{b[0]}x{b[1]}", pt.side, f"{pt.efficiency:.3f}",
         f"{lb[b][i].efficiency:.3f}"]
        for b, pts in fd.items()
        for i, pt in enumerate(pts)
    ]
    record_figure(
        "fig07_fd2d_efficiency",
        format_table(
            ["decomp", "side", "f (FD)", "f (LB)"],
            rows,
            title="Fig. 7 — FD 2D efficiency vs subregion side "
                  "(LB alongside for the §7 comparison)",
        ),
    )

    for blocks, pts in fd.items():
        effs = [p.efficiency for p in pts]
        assert all(b >= a - 1e-9 for a, b in zip(effs, effs[1:])), blocks
        assert effs[-1] > 0.6, blocks

    # FD decays faster than LB towards small subregions: the FD/LB
    # efficiency ratio collapses as the grain shrinks ...
    for blocks in fd:
        small_ratio = fd[blocks][0].efficiency / lb[blocks][0].efficiency
        large_ratio = fd[blocks][-1].efficiency / lb[blocks][-1].efficiency
        assert small_ratio < large_ratio - 0.15, blocks
        assert large_ratio > 0.85, blocks
    # ... and at every small-to-mid grain FD is below LB
    for blocks in fd:
        for i, side in enumerate(DEFAULT_2D_SIDES[:4]):
            assert fd[blocks][i].efficiency < lb[blocks][i].efficiency
