"""§2: the flue pipe speaks — "it produces audible musical tones".

The paper's production runs (70,000 steps, 12 ms of simulated time)
resolve a 1 kHz jet oscillation.  At benchmark scale (200x125 grid,
3,000 steps) the reproduction's pipe already locks into a periodic
acoustic oscillation at its mouth: this benchmark records the pressure
signal, extracts the spectrum, and checks the tone against the
quarter-wave estimate f = c_s / 4L of a stopped pipe.

Absolute pitch at this resolution carries large end-corrections and a
coarse spectral grid, so the assertions are deliberately structural: a
tone clearly above the noise floor, in the physically right band, with
harmonic content — the fingerprint of the flue-pipe feedback loop.
"""

import numpy as np

from repro.core import Decomposition, Simulation
from repro.fluids import (
    FluidParams,
    LBMethod,
    Probe,
    flue_pipe,
    spectrum,
)
from repro.harness import format_table

from conftest import run_once

SHAPE = (200, 125)
SETTLE = 600
RECORD = 2400
EVERY = 2


def _run_pipe():
    setup = flue_pipe(SHAPE, jet_speed=0.1, ramp_steps=80)
    params = FluidParams.lattice(2, nu=0.01, filter_eps=0.02)
    method = LBMethod(params, 2, inlets=[setup.inlet],
                      outlets=[setup.outlet])
    decomp = Decomposition(SHAPE, (5, 4), solid=setup.solid)
    fields = {
        "rho": np.ones(SHAPE), "u": np.zeros(SHAPE),
        "v": np.zeros(SHAPE),
    }
    sim = Simulation(method, decomp, fields, setup.solid)
    sim.step(SETTLE)
    probe = Probe(setup.mouth_probe)
    probe.run(sim, steps=RECORD, every=EVERY)
    th = max(2, SHAPE[0] // 64)
    pipe_length = (1.0 - 2 * th / SHAPE[0] - 0.30) * SHAPE[0]
    return probe.signal, params.cs, pipe_length


def test_pipe_tone(benchmark, record_figure):
    signal, cs, length = run_once(benchmark, _run_pipe)
    freqs, amp = spectrum(signal, dt=EVERY)
    order = np.argsort(amp[1:])[::-1] + 1
    fundamental = freqs[order[0]]
    quarter_wave = cs / (4.0 * length)
    noise_floor = float(np.median(amp[1:]))

    rows = [
        ["mouth-pressure swing", f"{signal.max() - signal.min():.3e}"],
        ["dominant tone (cycles/step)", f"{fundamental:.5f}"],
        ["quarter-wave estimate c_s/4L", f"{quarter_wave:.5f}"],
        ["tone / noise floor", f"{amp[order[0]] / noise_floor:.0f}x"],
        ["next lines",
         "  ".join(f"{freqs[k]:.5f}" for k in order[1:4])],
    ]
    record_figure(
        "pipe_tone",
        format_table(["quantity", "value"], rows,
                     title="§2 — the flue pipe's acoustic response "
                           "(mouth probe spectrum)"),
    )

    # a real tone: far above the spectral noise floor
    assert amp[order[0]] > 20 * noise_floor
    # in the physically right band around the quarter-wave pitch
    # (end corrections and the mouth cavity shift it; factor-3 window)
    assert quarter_wave / 3 < fundamental < quarter_wave * 3
    # periodic, not a drift: the oscillation swings repeatedly
    sig = signal - signal.mean()
    crossings = int(np.sum(np.diff(np.sign(sig)) != 0))
    assert crossings >= 3
