"""§5.2: staggered state saving vs saturating the file server.

The paper's numbers: a save that "would take 30 seconds and monopolize
the shared resources, now takes 60-90 seconds but leaves free time
slots for other programs".  The model is evaluated on the paper's own
parameters (20 processes, a couple of megabytes per process, the
10 Mbps shared bus) and on the real runtime the staggered ordering
itself is exercised by tests/distrib (flock'd turn counter, completion
marker).
"""

from repro.cluster import simultaneous_save, staggered_save
from repro.harness import format_table

from conftest import run_once

N_PROCS = 20
DUMP_BYTES = 1.875e6  # "a couple of megabytes per process"
BANDWIDTH = 1.25e6


def test_staggered_saving(benchmark, record_figure):
    def build():
        simo = simultaneous_save(N_PROCS, DUMP_BYTES, BANDWIDTH)
        out = {"simultaneous": simo}
        for gap in (0.5, 1.0, 2.0):
            out[f"staggered x{gap:g}"] = staggered_save(
                N_PROCS, DUMP_BYTES, BANDWIDTH, gap_fraction=gap
            )
        return out

    plans = run_once(benchmark, build)
    rows = [
        [name, f"{p.total_time:.0f}", f"{p.max_busy_stretch:.1f}",
         f"{p.free_fraction:.2f}"]
        for name, p in plans.items()
    ]
    record_figure(
        "staggered_saving",
        format_table(
            ["strategy", "total (s)", "max frozen stretch (s)",
             "free fraction"],
            rows,
            title="§5.2 — saving 20 x 1.9 MB dumps over 10 Mbps "
                  "shared Ethernet",
        ),
    )

    simo = plans["simultaneous"]
    # the paper's 30-second monopolizing save
    assert 25 <= simo.total_time <= 35
    assert simo.free_fraction == 0.0

    # the staggered 60-90 second band
    one = plans["staggered x1"]
    two = plans["staggered x2"]
    assert 55 <= one.total_time <= 65
    assert 85 <= two.total_time <= 95
    # ... with the network never frozen longer than one dump
    for name, p in plans.items():
        if name != "simultaneous":
            assert p.max_busy_stretch < 2.0, name
            assert p.free_fraction >= 0.3, name
