"""§1.1 ablation: automatic migration vs dynamic workload allocation.

The paper's design argument: for fluid problems with static geometry,
"it may be simpler and more effective to use fixed size subregions per
processor, and to use automatic migration of processes from busy hosts
to free hosts" than the dynamic allocation of Cap & Strumpen.  This
benchmark quantifies the claim under the paper's own conditions — a
non-dedicated cluster with *spare* workstations (20 of 25 used) — and
under the condition where the baseline is the only option (no spare
host exists).
"""

from repro.cluster import ClusterSimulation, LoadTrace, paper_sim_cluster
from repro.harness import format_table

from conftest import run_once

SIDE = 140
BLOCKS = (4, 1)
BUSY = {"hp715-01": LoadTrace.busy_from(60.0, load=2.0)}


def _run(policy, hosts, steps=800, poll=30.0):
    sim = ClusterSimulation(
        "lb", 2, BLOCKS, SIDE, hosts=hosts,
    )
    kw = {} if policy == "none" else {
        "monitor_poll": poll, "policy": policy,
    }
    res = sim.run(steps=steps, migration_cost=30.0, **kw)
    return sim, res


def test_migration_vs_rebalance(benchmark, record_figure):
    def build():
        out = {}
        # with spare hosts (the paper's 20-of-25 situation)
        for policy in ("none", "migrate", "rebalance"):
            _, res = _run(policy, paper_sim_cluster(dict(BUSY)))
            out[("spare", policy)] = res
        # without spare hosts: the cluster is exactly the 4 we use
        cramped = [
            h for h in paper_sim_cluster(dict(BUSY))
            if h.name in ("hp715-00", "hp715-01", "hp715-02", "hp715-03")
        ]
        for policy in ("none", "rebalance"):
            _, res = _run(
                policy,
                [h for h in cramped],
            )
            out[("cramped", policy)] = res
        return out

    res = run_once(benchmark, build)
    rows = [
        [scenario, policy, f"{r.elapsed:.0f}", f"{r.efficiency:.3f}",
         len(r.migrations)]
        for (scenario, policy), r in res.items()
    ]
    record_figure(
        "migration_vs_rebalance",
        format_table(
            ["hosts", "policy", "elapsed (s)", "efficiency",
             "migrations"],
            rows,
            title="§1.1 — migration vs dynamic allocation, one host "
                  "busy from t=60 s",
        ),
    )

    spare_none = res[("spare", "none")]
    spare_mig = res[("spare", "migrate")]
    spare_reb = res[("spare", "rebalance")]

    # both policies beat doing nothing
    assert spare_mig.elapsed < spare_none.elapsed
    assert spare_reb.elapsed < spare_none.elapsed
    # the paper's claim: with free workstations available, migration is
    # at least as effective as resizing (the busy host leaves the pool
    # entirely instead of staying at reduced speed)
    assert spare_mig.elapsed <= spare_reb.elapsed * 1.02
    assert spare_mig.migrations and not spare_reb.migrations

    # and the flip side: with no spare host, migration is impossible
    # and rebalancing is what helps
    cramped_none = res[("cramped", "none")]
    cramped_reb = res[("cramped", "rebalance")]
    assert cramped_reb.elapsed < cramped_none.elapsed * 0.92
