"""Figure 10: parallel efficiency of 3D lattice Boltzmann simulations.

Efficiency vs subregion side for the 3D decompositions (2x2x2),
(3x2x2), ... — "we can see that the efficiency is rather poor" (§7):
even at the 40^3 memory ceiling of the paper's workstations the shared
bus caps 3D efficiency far below the 2D values of fig. 5.
"""

from repro.harness import (
    DEFAULT_3D_DECOMPS,
    DEFAULT_3D_SIDES,
    format_table,
    sweep_3d_grain,
    sweep_2d_grain,
)

from conftest import run_once


def test_fig10(benchmark, record_figure):
    def build():
        d3 = sweep_3d_grain("lb", DEFAULT_3D_DECOMPS, DEFAULT_3D_SIDES,
                            steps=25)
        # the 2D point of comparable processor count and max grain
        d2 = sweep_2d_grain("lb", ((4, 4),), (300,), steps=25)
        return d3, d2

    d3, d2 = run_once(benchmark, build)
    rows = [
        ["x".join(map(str, b)), pt.side, pt.processors,
         f"{pt.efficiency:.3f}", pt.network_errors]
        for b, pts in d3.items()
        for pt in pts
    ]
    record_figure(
        "fig10_lb3d_efficiency",
        format_table(
            ["decomp", "side", "P", "f (sim)", "net errors"],
            rows,
            title="Fig. 10 — LB 3D efficiency vs subregion side",
        ),
    )

    for blocks, pts in d3.items():
        effs = [p.efficiency for p in pts]
        # still monotone in grain ...
        assert all(b >= a - 1e-9 for a, b in zip(effs, effs[1:])), blocks

    # "rather poor": at the 40^3 memory ceiling, 16-processor 3D runs
    # stay far below the 2D efficiency at the 300^2 ceiling
    e3_16 = [pts[-1].efficiency for b, pts in d3.items()
             if pts[0].processors == 16][0]
    e2_16 = d2[(4, 4)][0].efficiency
    assert e3_16 < e2_16 - 0.15
    assert e3_16 < 0.72

    # more processors at fixed grain only makes 3D worse
    finals = {pts[0].processors: pts[-1].efficiency for pts in d3.values()}
    ps = sorted(finals)
    assert all(finals[b] <= finals[a] + 1e-9
               for a, b in zip(ps, ps[1:]))


def test_fd_3d_even_worse(benchmark, record_figure):
    """§7: 'The parallel efficiency of the finite difference method in
    3D simulations is even worse than the lattice Boltzmann method, and
    is not shown here' — shown here."""
    from repro.cluster import ClusterSimulation

    def build():
        rows = []
        for side in (15, 25, 35):
            lb = ClusterSimulation("lb", 3, (2, 2, 2), side).run(20)
            fd = ClusterSimulation("fd", 3, (2, 2, 2), side).run(20)
            rows.append((side, lb.efficiency, fd.efficiency))
        return rows

    rows = run_once(benchmark, build)
    record_figure(
        "fd3d_worse_than_lb3d",
        format_table(
            ["side", "f LB 3D", "f FD 3D"],
            [[s, f"{l:.3f}", f"{f:.3f}"] for s, l, f in rows],
            title="§7 — FD 3D efficiency vs LB 3D (the figure the paper "
                  "declined to print)",
        ),
    )
    for side, lb, fd in rows:
        assert fd < lb, side
