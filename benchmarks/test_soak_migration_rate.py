"""§5.1 soak: "typically one migration every 45 minutes".

A multi-hour production run on 20 of 25 workstations, with users
starting full-time jobs as a Poisson process across the cluster.  The
paper observes roughly one migration per 45 minutes under its users'
activity; here the user activity is a tunable stochastic model, so the
assertion is the *mechanism*, quantitatively: the monitoring program
answers essentially every busy-period onset on an occupied host with
exactly one migration, the computation survives hours of churn, and
the total migration downtime stays insignificant (30 s each).
"""

import numpy as np

from repro.cluster import (
    ClusterSimulation,
    expected_busy_events,
    paper_sim_cluster,
    poisson_user_traces,
)
from repro.harness import format_table

from conftest import run_once

HOURS = 3.0
#: tuned so ~20 occupied hosts see about one onset per 45 minutes total
RATE_PER_HOST_HOUR = (60.0 / 45.0) / 20.0


def _soak(seed):
    names = [h.name for h in paper_sim_cluster()]
    traces = poisson_user_traces(
        names,
        duration=HOURS * 3600.0,
        busy_rate_per_hour=RATE_PER_HOST_HOUR,
        mean_busy_minutes=30.0,
        seed=seed,
    )
    hosts = paper_sim_cluster(traces)
    sim = ClusterSimulation("lb", 2, (5, 4), 150, hosts=hosts)
    # ~0.64 s/step at 150^2: 3 simulated hours ~ 17k steps
    steps = int(HOURS * 3600.0 / 0.65)
    res = sim.run(steps=steps, monitor_poll=60.0, migration_cost=30.0)
    initial_hosts = names[:20]
    return res, expected_busy_events(traces, initial_hosts)


def test_soak_migration_rate(benchmark, record_figure):
    def build():
        return [_soak(seed) for seed in (0, 1, 2)]

    runs = run_once(benchmark, build)
    rows = []
    for i, (res, onsets) in enumerate(runs):
        per_45min = len(res.migrations) / (HOURS * 60.0 / 45.0)
        rows.append(
            [i, onsets, len(res.migrations), f"{per_45min:.2f}",
             f"{res.efficiency:.3f}",
             f"{30.0 * len(res.migrations) / res.elapsed * 100:.1f}%"]
        )
    record_figure(
        "soak_migration_rate",
        format_table(
            ["seed", "busy onsets (initial hosts)", "migrations",
             "migrations per 45 min", "efficiency",
             "migration downtime"],
            rows,
            title=f"§5.1 — {HOURS:.0f} simulated hours on 20 of 25 "
                  "workstations with Poisson user activity",
        ),
    )

    total_migrations = sum(len(r.migrations) for r, _ in runs)
    total_onsets = sum(o for _, o in runs)
    # the monitor answers busy events with migrations, one-ish for one
    # (events can also hit spare hosts after earlier migrations)
    assert total_migrations >= 0.5 * total_onsets
    assert total_migrations <= total_onsets + 3 * len(runs)
    # the paper's ballpark: around one per 45 minutes under this rate
    per_45 = total_migrations / (len(runs) * HOURS * 60.0 / 45.0)
    assert 0.3 < per_45 < 3.0
    for res, _ in runs:
        # churn never wedges the computation, and the 30 s pauses stay
        # insignificant (§5.1)
        assert res.efficiency > 0.45
        downtime = 30.0 * len(res.migrations)
        assert downtime < 0.05 * res.elapsed
