"""Ablation: are the paper's conclusions robust to the fitted constants?

The cluster simulator carries three constants the paper does not pin
down exactly — the per-message overhead, the CSMA/CD collision factor,
and the split of per-step compute across the method's phases.  This
benchmark perturbs each by generous factors and re-measures the two
headline conclusions:

1. 2D at 20 processors stays serviceable while 3D collapses (fig. 9);
2. FD loses to LB at small subregions (fig. 5 vs 7).

Both orderings must survive every perturbation — i.e. the reproduction's
claims are properties of the physics and the §6/§7 calibration, not of
the fitted fudge factors.
"""

from repro.cluster import ClusterSimulation, NetworkParams
import repro.cluster.simulator as sim_mod
from repro.harness import format_table

from conftest import run_once


def _headline(network, fractions=None):
    """(f2d@20, f3d@20, fd_small, lb_small) under one parameter set."""
    saved = dict(sim_mod._PHASE_FRACTIONS)
    if fractions:
        sim_mod._PHASE_FRACTIONS.update(fractions)
    try:
        f2 = ClusterSimulation("lb", 2, (20, 1), 120,
                               network=network).run(20).efficiency
        f3 = ClusterSimulation("lb", 3, (20, 1, 1), 25,
                               network=network).run(20).efficiency
        fd = ClusterSimulation("fd", 2, (4, 4), 40,
                               network=network).run(20).efficiency
        lb = ClusterSimulation("lb", 2, (4, 4), 40,
                               network=network).run(20).efficiency
    finally:
        sim_mod._PHASE_FRACTIONS.clear()
        sim_mod._PHASE_FRACTIONS.update(saved)
    return f2, f3, fd, lb


VARIANTS = {
    "calibrated": (NetworkParams(), None),
    "overhead / 4": (NetworkParams(overhead=0.25e-3), None),
    "overhead x 4": (NetworkParams(overhead=4.0e-3), None),
    "no collisions": (NetworkParams(collision_factor=0.0), None),
    "collisions x 4": (NetworkParams(collision_factor=0.08), None),
    "flat fractions": (
        NetworkParams(),
        {"fd": (0.4, 0.4), "lb": (0.5,)},
    ),
}


def test_calibration_sensitivity(benchmark, record_figure):
    def build():
        return {
            name: _headline(net, fr)
            for name, (net, fr) in VARIANTS.items()
        }

    results = run_once(benchmark, build)
    rows = [
        [name, f"{f2:.3f}", f"{f3:.3f}", f"{fd:.3f}", f"{lb:.3f}"]
        for name, (f2, f3, fd, lb) in results.items()
    ]
    record_figure(
        "calibration_sensitivity",
        format_table(
            ["variant", "f 2D @20", "f 3D @20", "f FD 40^2",
             "f LB 40^2"],
            rows,
            title="Sensitivity of the headline conclusions to the "
                  "fitted constants",
        ),
    )

    for name, (f2, f3, fd, lb) in results.items():
        # conclusion 1: 3D collapses well below 2D, always
        assert f3 < f2 - 0.1, name
        # conclusion 2: FD below LB at small subregions, always
        assert fd < lb, name

    # and the calibrated point itself sits in the paper's bands
    f2, f3, fd, lb = results["calibrated"]
    assert 0.6 < f2 < 0.9
    assert 0.3 < f3 < 0.6
