"""§5.1 migration economics.

The paper reports: one migration roughly every 45 minutes on a
20-of-25-workstation run, each lasting about 30 seconds — "the cost of
migration is insignificant because the migrations do not happen too
often".  And migrating must beat staying: a subprocess sharing a busy
host throttles the whole synchronized computation.

Simulated at the paper's scale: a 45-minute (simulated) 20-workstation
run in which one host picks up a full-time competing job.
"""

import numpy as np

from repro.cluster import ClusterSimulation, LoadTrace, paper_sim_cluster
from repro.harness import format_table

from conftest import run_once

SIDE = 150
BLOCKS = (5, 4)
BUSY_AT = 300.0  # the regular user shows up 5 minutes in


def _run(monitor_poll, steps=2500):
    traces = {"hp715-07": LoadTrace.busy_from(BUSY_AT, load=2.0)}
    sim = ClusterSimulation(
        "lb", 2, BLOCKS, SIDE, hosts=paper_sim_cluster(traces)
    )
    return sim.run(steps=steps, monitor_poll=monitor_poll,
                   migration_cost=30.0)


def test_migration_overhead(benchmark, record_figure):
    def build():
        return {
            "clean": ClusterSimulation("lb", 2, BLOCKS, SIDE).run(2500),
            "stuck": _run(monitor_poll=0.0),
            "migrated": _run(monitor_poll=60.0),
        }

    res = run_once(benchmark, build)
    rows = [
        [name,
         f"{r.elapsed:.0f}",
         f"{r.time_per_step * 1e3:.1f}",
         f"{r.efficiency:.3f}",
         len(r.migrations)]
        for name, r in res.items()
    ]
    record_figure(
        "migration_overhead",
        format_table(
            ["scenario", "elapsed (s)", "ms/step", "efficiency",
             "migrations"],
            rows,
            title="§5.1 — migrating off a busy host vs staying "
                  "(20 workstations, one busy from t=300 s)",
        ),
    )

    clean, stuck, migrated = res["clean"], res["stuck"], res["migrated"]
    assert stuck.migrations == [] and len(migrated.migrations) == 1

    # staying on the busy host throttles everyone: the whole run slows
    # towards the busy host's halved speed
    assert stuck.elapsed > 1.3 * clean.elapsed

    # migrating recovers most of the loss; the 30 s pause is noise over
    # a 45-minute run ("the cost of migration is insignificant")
    assert migrated.elapsed < stuck.elapsed - 60.0
    overhead = migrated.elapsed - clean.elapsed
    assert overhead < 0.1 * clean.elapsed

    # the migration moved the rank off the busy host
    ev = migrated.migrations[0]
    assert ev.from_host == "hp715-07"
    assert ev.pause_duration == 30.0
