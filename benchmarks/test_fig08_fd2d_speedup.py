"""Figure 8: parallel speedup of 2D finite-difference simulations."""

from repro.harness import (
    DEFAULT_2D_DECOMPS,
    DEFAULT_2D_SIDES,
    format_table,
    sweep_2d_grain,
)

from conftest import run_once


def test_fig08(benchmark, record_figure):
    data = run_once(
        benchmark,
        lambda: sweep_2d_grain(
            "fd", DEFAULT_2D_DECOMPS, DEFAULT_2D_SIDES, steps=30
        ),
    )
    rows = [
        [f"{b[0]}x{b[1]}", pt.side, pt.processors, f"{pt.speedup:.2f}"]
        for b, pts in data.items()
        for pt in pts
    ]
    record_figure(
        "fig08_fd2d_speedup",
        format_table(
            ["decomp", "side", "P", "speedup"],
            rows,
            title="Fig. 8 — FD 2D speedup vs subregion side",
        ),
    )

    for blocks, pts in data.items():
        p = pts[0].processors
        sp = [pt.speedup for pt in pts]
        assert all(b >= a - 1e-9 for a, b in zip(sp, sp[1:])), blocks
        assert sp[-1] <= p + 1e-6
        # FD still parallelizes usefully at production grain
        assert sp[-1] > 0.6 * p, blocks

    # speedup ordering by processor count at the largest grain
    finals = {b: pts[-1].speedup for b, pts in data.items()}
    assert finals[(5, 4)] > finals[(4, 4)] > finals[(3, 3)] > finals[(2, 2)]
