"""Figure 13: the model's efficiency vs processor count (eqs. 20-21).

2D at N = 125^2 and 3D at N = 25^3, both with m = 2 (left/right
neighbours only) and the 5/6 payload/speed factor in 3D.  Asserted
against both the closed form and the fig. 9 simulation.
"""

import numpy as np
import pytest

from repro.harness import format_series, model_fig13, sweep_processors

from conftest import run_once

PROCS = np.arange(2, 21)


def test_fig13(benchmark, record_figure):
    data = run_once(benchmark, lambda: model_fig13(PROCS))
    text = "\n".join(
        [
            format_series("2D (125^2, m=2)", data["P"].tolist(),
                          data["2d"].tolist()),
            format_series("3D (25^3,  m=2)", data["P"].tolist(),
                          data["3d"].tolist()),
        ]
    )
    record_figure(
        "fig13_model_vs_p",
        "Fig. 13 — eqs. 20-21 model, efficiency vs processors\n" + text,
    )

    # closed-form endpoints
    assert data["2d"][-1] == pytest.approx(
        1 / (1 + (1 / 125) * 19 * 2 * (2 / 3))
    )
    assert data["3d"][-1] == pytest.approx(
        1 / (1 + (5 / 6) * 25.0**-1 * 19 * 2 * (2 / 3))
    )

    # monotone decline, 3D always below 2D, widening gap
    assert np.all(np.diff(data["2d"]) < 0)
    assert np.all(np.diff(data["3d"]) < 0)
    gap = data["2d"] - data["3d"]
    assert np.all(gap > 0)
    assert gap[-1] > gap[0]

    # "good agreement" with the fig. 9 measurement (paper §8)
    sim = sweep_processors(processors=(4, 12, 20), steps=25)
    for i, p in enumerate((4, 12, 20)):
        j = int(np.where(PROCS == p)[0][0])
        assert sim["2d"][i].efficiency == pytest.approx(
            float(data["2d"][j]), abs=0.18
        )
        assert sim["3d"][i].efficiency == pytest.approx(
            float(data["3d"][j]), abs=0.18
        )
