"""§9 ablation: what Ethernet switches, FDDI and ATM buy.

The paper closes with a prediction: "the use of new technologies in the
near future such as Ethernet switches, FDDI and ATM networks will make
practical three-dimensional simulations of subsonic flow on a cluster
of workstations."  This benchmark reruns the fig. 9 scaled-problem
sweep (3D, 25^3 per processor) on each technology and also shows the
other escape hatch the loose-sync mode represents: overlapping
communication with computation.
"""

from repro.cluster import ClusterSimulation, NetworkParams
from repro.harness import format_table

from conftest import run_once

PRESETS = ("ethernet10", "fddi100", "switched10", "atm155")
PROCS = (4, 8, 16, 20)


def _f(preset, p, ndim=3, sync_mode="bsp"):
    blocks = (p, 1, 1) if ndim == 3 else (p, 1)
    side = 25 if ndim == 3 else 120
    sim = ClusterSimulation(
        "lb", ndim, blocks, side,
        network=NetworkParams(preset=preset), sync_mode=sync_mode,
    )
    return sim.run(steps=25).efficiency


def test_future_networks(benchmark, record_figure):
    def build():
        table = {}
        for preset in PRESETS:
            table[preset] = [_f(preset, p) for p in PROCS]
        table["ethernet10+overlap"] = [
            _f("ethernet10", p, sync_mode="loose") for p in PROCS
        ]
        return table

    table = run_once(benchmark, build)
    rows = [
        [name] + [f"{v:.3f}" for v in vals]
        for name, vals in table.items()
    ]
    record_figure(
        "future_networks_3d",
        format_table(
            ["network"] + [f"P={p}" for p in PROCS],
            rows,
            title="§9 — 3D LB efficiency (25^3/proc) by network "
                  "technology",
        ),
    )

    eth = table["ethernet10"]
    sw = table["switched10"]
    fddi = table["fddi100"]
    atm = table["atm155"]

    # the baseline collapses (fig. 9's crosses)
    assert eth[-1] < 0.55
    # every §9 technology rescues 3D at 20 processors
    for name, vals in (("switched10", sw), ("fddi100", fddi),
                       ("atm155", atm)):
        assert vals[-1] > eth[-1] + 0.15, name
    # a switch keeps efficiency flat in P on homogeneous hosts (no
    # (P-1) law); the residual dip at P=20 is the slower 720 models
    # entering the pool, not the network
    assert sw[2] - sw[0] > -0.02
    # ATM makes 3D genuinely practical (homogeneous-host range)
    assert atm[2] > 0.9
    # overlap alone (loose sync) also recovers much of the loss —
    # the other reading of "the network is the bottleneck"
    assert table["ethernet10+overlap"][-1] > eth[-1] + 0.1
