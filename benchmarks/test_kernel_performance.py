"""Kernel throughput on this machine (proper pytest-benchmark timing).

The §7 speed table's modern counterpart: fluid nodes integrated per
second for each (method x dimensionality), measured over repeated
rounds by pytest-benchmark, plus the ghost-exchange overhead.  These
are the numbers a user sizing a run on today's hardware needs, in the
same units the paper reports (nodes/s, padded areas excluded).
"""

import numpy as np
import pytest

from repro.core import Decomposition, LocalExchanger, Simulation
from repro.fluids import FDMethod, FluidParams, LBMethod


def _sim(method_cls, ndim, side, blocks=None):
    shape = (side,) * ndim
    blocks = blocks or (1,) * ndim
    params = FluidParams.lattice(ndim, nu=0.05)
    fields = {"rho": np.ones(shape)}
    for n in ("u", "v", "w")[:ndim]:
        fields[n] = np.zeros(shape)
    d = Decomposition(shape, blocks, periodic=(True,) * ndim)
    return Simulation(method_cls(params, ndim), d, fields)


@pytest.mark.parametrize(
    "method_cls,ndim,side",
    [
        (LBMethod, 2, 128),
        (FDMethod, 2, 128),
        (LBMethod, 3, 24),
        (FDMethod, 3, 24),
    ],
    ids=["lb2d", "fd2d", "lb3d", "fd3d"],
)
def test_step_throughput(benchmark, method_cls, ndim, side):
    sim = _sim(method_cls, ndim, side)
    sim.step(2)  # warm caches and lazy allocations
    benchmark(sim.step, 1)
    nodes = side**ndim
    rate = nodes / benchmark.stats.stats.mean
    benchmark.extra_info["nodes_per_second"] = rate
    # the slowest kernel on any current machine still beats the 1994
    # HP 715/50 (39 132 nodes/s LB 2D)
    assert rate > 39_132


def test_exchange_overhead_2d(benchmark):
    """Cost of one full ghost exchange relative to a compute step."""
    sim = _sim(LBMethod, 2, 128, blocks=(2, 2))
    sim.step(2)
    ex = sim.exchanger
    benchmark(ex.exchange, ("f",))
    # the in-process exchange must be a small fraction of a step
    # (communication cost lives in the transports, not the copies)
    assert benchmark.stats.stats.mean < 0.05


def test_filter_cost_share(benchmark):
    """The fourth-order filter is a bounded fraction of an FD step."""
    sim = _sim(FDMethod, 2, 128)
    sim.step(2)
    sub = sim.subs[0]
    method = sim.method
    g1 = sub.grown_interior(1)
    benchmark(method.filter.apply, sub, method.field_names, g1)
    assert benchmark.stats.stats.mean < 0.1
