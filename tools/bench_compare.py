#!/usr/bin/env python
"""Compare BENCH_*.json results against committed baselines.

Every bench leg of the CI emits a ``BENCH_<name>.json``; this tool
diffs each one against ``benchmarks/baselines/BENCH_<name>.json`` and
exits non-zero when a *gated* metric regressed by more than the
tolerance (default 20%).

What is gated — and what is not
-------------------------------
CI runners differ wildly in absolute speed, so raw timings
(``*_seconds``, ``seconds_per_step``, ``nodes_per_second`` ...) are
reported but **never** gated.  The gate covers only metrics that are
dimensionless on a single host and therefore portable:

* any number under a key containing ``speedup``, ``efficiency``,
  ``utilization`` or ending in ``_ratio`` — higher is better, and a
  drop below ``baseline x (1 - tolerance)`` fails;
* any boolean — ``True`` in the baseline must stay ``True``
  (``passed``, ``*_bitwise``, ``warm_all_cached`` ...); a boolean that
  *improved* to ``True`` is fine.

The ``host`` subtree (platform, python, numpy, cpu count) is ignored
entirely: two hosts never match and should not have to.

A result file without a committed baseline is a warning, not a
failure — commit one with ``--update-baselines`` once the numbers are
trusted.

Usage
-----
::

    python tools/bench_compare.py BENCH_graph.json
    python tools/bench_compare.py BENCH_*.json --tolerance 0.25
    python tools/bench_compare.py BENCH_graph.json --update-baselines
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

#: Subtrees that never participate in the comparison.
IGNORED_KEYS = frozenset({"host"})

#: Key-name fragments marking a gated, higher-is-better number.
GATED_FRAGMENTS = ("speedup", "efficiency", "utilization")

DEFAULT_TOLERANCE = 0.20


def default_baseline_dir() -> Path:
    """``benchmarks/baselines`` next to this script's repo root."""
    return Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"


def is_gated_key(key: str) -> bool:
    """Whether a numeric value under ``key`` participates in the gate."""
    low = key.lower()
    return any(f in low for f in GATED_FRAGMENTS) or low.endswith("_ratio")


def iter_metrics(tree, prefix="", gated=False):
    """Yield ``(path, value, gated)`` for every scalar leaf.

    ``gated`` is sticky downward: everything under a gated key (e.g.
    the ``speedups`` table of BENCH_kernels) is gated too.
    """
    if isinstance(tree, dict):
        for key, value in tree.items():
            if key in IGNORED_KEYS and not prefix:
                continue
            yield from iter_metrics(
                value, f"{prefix}{key}.", gated or is_gated_key(key)
            )
    elif isinstance(tree, list):
        for i, value in enumerate(tree):
            yield from iter_metrics(value, f"{prefix}{i}.", gated)
    else:
        yield prefix.rstrip("."), tree, gated


def compare(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """All gate violations of ``current`` against ``baseline``."""
    cur = {path: (value, gated)
           for path, value, gated in iter_metrics(current)}
    failures: list[str] = []
    for path, base_val, gated in iter_metrics(baseline):
        if path not in cur:
            if gated:
                failures.append(f"{path}: gated metric missing "
                                f"(baseline {base_val!r})")
            continue
        cur_val, _ = cur[path]
        if isinstance(base_val, bool):
            if base_val and cur_val is not True:
                failures.append(f"{path}: was True, now {cur_val!r}")
        elif gated and isinstance(base_val, (int, float)) \
                and isinstance(cur_val, (int, float)):
            floor = base_val * (1.0 - tolerance)
            if cur_val < floor:
                drop = (1.0 - cur_val / base_val) * 100 if base_val else 0.0
                failures.append(
                    f"{path}: {cur_val:.4g} < {floor:.4g} "
                    f"(baseline {base_val:.4g}, -{drop:.1f}%)"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "results", nargs="+", type=Path,
        help="BENCH_*.json files to check",
    )
    parser.add_argument(
        "--baselines", type=Path, default=None,
        help="baseline directory (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional drop of gated metrics "
             "(default: %(default)s)",
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="copy the result files into the baseline directory "
             "instead of comparing",
    )
    args = parser.parse_args(argv)
    base_dir = args.baselines or default_baseline_dir()

    if args.update_baselines:
        base_dir.mkdir(parents=True, exist_ok=True)
        for path in args.results:
            shutil.copyfile(path, base_dir / path.name)
            print(f"baseline updated: {base_dir / path.name}")
        return 0

    rc = 0
    for path in args.results:
        base_path = base_dir / path.name
        if not base_path.exists():
            print(f"{path.name}: no baseline at {base_path} — skipped "
                  f"(commit one with --update-baselines)")
            continue
        current = json.loads(path.read_text())
        baseline = json.loads(base_path.read_text())
        failures = compare(current, baseline, args.tolerance)
        gated = sum(1 for _, _, g in iter_metrics(baseline) if g)
        if failures:
            rc = 1
            print(f"{path.name}: REGRESSED "
                  f"({len(failures)}/{gated} gated metrics)")
            for line in failures:
                print(f"  {line}")
        else:
            print(f"{path.name}: ok ({gated} gated metrics within "
                  f"{args.tolerance:.0%} of baseline)")
    return rc


if __name__ == "__main__":
    sys.exit(main())
